//! The shared discrete-event simulation runtime.
//!
//! Every method in the paper's evaluation — LbChat, SCO, and all four
//! benchmarks — runs inside the same simulator: a mobility trace is played
//! back at the world frame rate; free vehicles train local iterations;
//! vehicles within radio range open pairwise sessions (or talk to
//! infrastructure); every transfer is charged real airtime on the simulated
//! radio. Methods differ only in the [`CollabAlgorithm`] implementation, so
//! comparisons are apples-to-apples.
//!
//! Since the event-runtime redesign the simulator is a discrete-event
//! scheduler ([`sched`]): frames, session opens/closes, streaming transfer
//! steps, training slices, and evaluations are events on a deterministic
//! priority queue. Algorithms speak a session lifecycle —
//! [`CollabAlgorithm::session_open`] → [`CollabAlgorithm::session_step`] per
//! completed transfer → [`CollabAlgorithm::session_close`] — through a
//! [`SessionCtx`], and declare each payload they want moved as a
//! [`TransferSpec`] instead of blocking on an all-at-once transfer call.
//! With contention disabled (the default) the event loop replays the
//! retained synchronous frame loop ([`mod@reference`]) bit for bit; with a
//! [`MediumConfig`] installed, transfers stream packet-granularly and
//! contend for per-cell airtime so the network can actually saturate.

pub mod reference;
pub mod sched;

mod event_loop;

use crate::compress::Codec;
use crate::config::ConfigError;
use crate::metrics::Metrics;
use crate::obs::ObsSink;
use simnet::channel::{Channel, MediumConfig, RadioConfig, TransferOutcome, TransferSpec};
use simnet::contact::ContactEstimate;
use simnet::loss::LossModel;
use simnet::trace::MobilityTrace;
use vnn::ParamVec;

/// Runtime parameters shared by all methods.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Total simulated training time `T` in seconds.
    pub duration: f64,
    /// Training iterations a free vehicle performs per simulated second
    /// (models the paper's "except for the local training time, we ignore
    /// time for computation").
    pub train_iters_per_second: f64,
    /// Radio parameters (packet size, bandwidth, range, retransmissions).
    pub radio: RadioConfig,
    /// Wireless loss model (None for Fig. 2(a)/Table II, distance-based for
    /// Fig. 2(b)/Table III).
    pub loss_model: LossModel,
    /// Seconds between loss-curve evaluations.
    pub eval_every: f64,
    /// After a pairwise session, the same pair won't start another until
    /// this many seconds pass (they must gather new data / models to make a
    /// re-exchange useful).
    pub pair_cooldown: f64,
    /// Reference exchange time for the truncated contact ratio `z`.
    pub contact_reference_time: f64,
    /// Number of future route samples shared in assist messages (at the
    /// trace frame spacing).
    pub route_share_samples: usize,
    /// RNG seed for communication randomness.
    pub seed: u64,
    /// Model codec every share path routes model exchange through (the
    /// `--codec` CLI axis): both engines hand it to algorithms via
    /// [`SessionCtx::codec`] / [`FrameCtx::codec`]. The default
    /// [`Codec::TopK`] reproduces the paper's §III-C top-k path bit for
    /// bit; see docs/COMPRESSION.md for the alternatives.
    pub codec: Codec,
    /// Shared-medium contention for streaming transfers. `None` (the
    /// default) runs sessions synchronously at their open event — the
    /// compatibility mode that reproduces [`mod@reference`] bit for bit. With a
    /// config installed, sessions stream packet windows that contend for
    /// per-cell airtime, with backoff and collision drops under congestion.
    pub contention: Option<MediumConfig>,
    /// Observability sink for structured run events (`round`, `session`,
    /// `transfer`, `backend`, `chat`, and the streaming `session.*`
    /// lifecycle events); disabled (zero-cost) by default.
    /// See [`crate::obs`].
    pub obs: ObsSink,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            duration: 3600.0,
            train_iters_per_second: 2.0,
            radio: RadioConfig::default(),
            loss_model: LossModel::None,
            eval_every: 120.0,
            pair_cooldown: 60.0,
            contact_reference_time: 30.0,
            route_share_samples: 240,
            seed: 0,
            codec: Codec::TopK,
            contention: None,
            obs: ObsSink::disabled(),
        }
    }
}

impl RuntimeConfig {
    /// Starts a validating builder from the defaults.
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder { cfg: Self::default() }
    }

    /// Checks every field against its domain (positive duration and eval
    /// cadence, non-negative rates). Struct-literal construction stays
    /// possible for tests; the builder calls this on [`RuntimeConfigBuilder::build`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        ConfigError::require_positive("duration", self.duration)?;
        ConfigError::require_non_negative(
            "train_iters_per_second",
            self.train_iters_per_second,
        )?;
        ConfigError::require_positive("eval_every", self.eval_every)?;
        ConfigError::require_non_negative("pair_cooldown", self.pair_cooldown)?;
        ConfigError::require_positive("contact_reference_time", self.contact_reference_time)?;
        if let Some(medium) = &self.contention {
            ConfigError::require_positive("contention.window_s", medium.window_s)?;
            ConfigError::require_positive("contention.cell_m", medium.cell_m as f64)?;
            ConfigError::require_non_negative(
                "contention.collision_loss",
                medium.collision_loss as f64,
            )?;
        }
        Ok(())
    }
}

/// Validating builder for [`RuntimeConfig`]: chain setters from
/// [`RuntimeConfig::builder`], then [`RuntimeConfigBuilder::build`] rejects
/// out-of-domain values instead of letting them corrupt a simulation run.
///
/// ```
/// use lbchat::runtime::RuntimeConfig;
/// let cfg = RuntimeConfig::builder()
///     .duration(3600.0)
///     .eval_every(120.0)
///     .seed(7)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.duration, 3600.0);
/// assert!(RuntimeConfig::builder().duration(-1.0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeConfigBuilder {
    cfg: RuntimeConfig,
}

impl RuntimeConfigBuilder {
    /// Total simulated training time in seconds.
    pub fn duration(mut self, seconds: f64) -> Self {
        self.cfg.duration = seconds;
        self
    }

    /// Training iterations a free vehicle performs per simulated second.
    pub fn train_iters_per_second(mut self, rate: f64) -> Self {
        self.cfg.train_iters_per_second = rate;
        self
    }

    /// Radio parameters.
    pub fn radio(mut self, radio: RadioConfig) -> Self {
        self.cfg.radio = radio;
        self
    }

    /// Wireless loss model.
    pub fn loss_model(mut self, model: LossModel) -> Self {
        self.cfg.loss_model = model;
        self
    }

    /// Seconds between loss-curve evaluations.
    pub fn eval_every(mut self, seconds: f64) -> Self {
        self.cfg.eval_every = seconds;
        self
    }

    /// Per-pair cooldown between sessions, seconds.
    pub fn pair_cooldown(mut self, seconds: f64) -> Self {
        self.cfg.pair_cooldown = seconds;
        self
    }

    /// Reference exchange time for the truncated contact ratio.
    pub fn contact_reference_time(mut self, seconds: f64) -> Self {
        self.cfg.contact_reference_time = seconds;
        self
    }

    /// Future route samples shared in assist messages.
    pub fn route_share_samples(mut self, samples: usize) -> Self {
        self.cfg.route_share_samples = samples;
        self
    }

    /// RNG seed for communication randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Model codec for every share path (default [`Codec::TopK`]).
    pub fn codec(mut self, codec: Codec) -> Self {
        self.cfg.codec = codec;
        self
    }

    /// Enables shared-medium contention with the given parameters.
    pub fn contention(mut self, medium: MediumConfig) -> Self {
        self.cfg.contention = Some(medium);
        self
    }

    /// Observability sink the runtime emits structured events into
    /// (disabled by default).
    pub fn obs(mut self, sink: ObsSink) -> Self {
        self.cfg.obs = sink;
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> Result<RuntimeConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// A typed error from [`Runtime::run`] — the runtime's analogue of
/// [`ConfigError`]: conditions a caller can check for and report instead of
/// unwinding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The mobility trace has fewer agents than the algorithm has nodes.
    TraceTooSmall {
        /// Agents available in the trace.
        agents: usize,
        /// Nodes the algorithm needs.
        nodes: usize,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::TraceTooSmall { agents, nodes } => write!(
                f,
                "trace has {agents} agents but the algorithm needs {nodes}"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// A pairwise radio link during one session, advancing its own elapsed time
/// as transfers are charged. This context subsumes the pre-event-runtime
/// `LinkCtx`: algorithms either declare transfers as [`TransferSpec`]s
/// through the session lifecycle (streamed by the event loop) or move them
/// synchronously with [`SessionCtx::transfer`] / [`SessionCtx::run_spec`];
/// the runtime uses the accumulated time to mark both endpoints busy.
pub struct SessionCtx<'a> {
    /// Session start in simulated seconds.
    start: f64,
    /// Node ids at the endpoints.
    pub i: usize,
    /// Second endpoint.
    pub j: usize,
    trace: &'a MobilityTrace,
    channel: &'a Channel,
    rng: &'a mut rand::rngs::StdRng,
    /// Metrics sink for this run.
    pub metrics: &'a mut Metrics,
    est: ContactEstimate,
    elapsed: f64,
    codec: Codec,
    obs: &'a ObsSink,
}

/// The pre-event-runtime name for [`SessionCtx`], kept so algorithm code and
/// the retained [`mod@reference`] loop read unchanged.
pub type LinkCtx<'a> = SessionCtx<'a>;

impl SessionCtx<'_> {
    /// The contact estimate (duration, z, p) computed from shared routes.
    pub fn contact(&self) -> ContactEstimate {
        self.est
    }

    /// The observability sink for this run (disabled unless the caller
    /// opted in through [`RuntimeConfig`]). Algorithms emit
    /// protocol-level events here — LbChat records one `chat` event per
    /// encounter with the valuation losses and chosen ψ ratios.
    pub fn obs(&self) -> &ObsSink {
        self.obs
    }

    /// Seconds already consumed in this session.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Current simulated time inside the session.
    pub fn now(&self) -> f64 {
        self.start + self.elapsed
    }

    /// Transfers `bytes` over the link with `deadline` seconds of session
    /// time remaining allowed (measured from now). Advances the session
    /// clock by the airtime consumed and returns whether the payload fully
    /// arrived. Distance-based loss follows the live trace positions.
    pub fn transfer(&mut self, bytes: usize, deadline: f64) -> TransferOutcome {
        self.run_spec(&TransferSpec::link(bytes, deadline))
    }

    /// Runs a [`TransferSpec`] synchronously over the link — the unified
    /// transfer entry point. Advances the session clock by the airtime
    /// consumed and records the transfer observability events.
    pub fn run_spec(&mut self, spec: &TransferSpec) -> TransferOutcome {
        let t0 = self.now();
        let trace = self.trace;
        let (i, j) = (self.i, self.j);
        let out = self.channel.run(spec, |t| trace.distance(i, j, t0 + t), self.rng);
        self.elapsed += out.elapsed();
        record_transfer_obs(self.obs, i, j, t0, spec.bytes, &out);
        out
    }

    /// Charges airtime without moving payload (e.g. waiting on the peer's
    /// computation in a strictly alternating protocol).
    pub fn charge(&mut self, seconds: f64) {
        self.elapsed += seconds.max(0.0);
    }

    /// The RNG for protocol-level randomness.
    pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
        self.rng
    }

    /// The session's model codec ([`RuntimeConfig`]'s `codec` field): the
    /// single entry point model exchange is routed through, for every
    /// method and both engines.
    pub fn codec(&self) -> Codec {
        self.codec
    }
}

/// Emits the `transfer` event and byte counters for one completed transfer
/// attempt — shared by the synchronous [`SessionCtx::run_spec`] path and the
/// event loop's streaming path so both produce the identical record.
fn record_transfer_obs(
    obs: &ObsSink,
    i: usize,
    j: usize,
    t0: f64,
    bytes: usize,
    out: &TransferOutcome,
) {
    if obs.enabled() {
        let delivered_bytes = match *out {
            TransferOutcome::Delivered { .. } => bytes,
            TransferOutcome::Failed { delivered_bytes, .. } => delivered_bytes,
        };
        obs.add("bytes_tx", bytes as u64);
        obs.add("bytes_delivered", delivered_bytes as u64);
        if !out.is_delivered() {
            obs.add("transfers_failed", 1);
        }
        obs.emit(
            "transfer",
            &[
                ("i", i.into()),
                ("j", j.into()),
                ("t", t0.into()),
                ("bytes", bytes.into()),
                ("delivered", out.is_delivered().into()),
                ("delivered_bytes", delivered_bytes.into()),
                ("airtime_s", out.elapsed().into()),
            ],
        );
    }
}

/// Per-frame context for infrastructure-based methods (central server,
/// RSUs): gives access to vehicle positions, a loss-model channel for
/// backend messages, and the metrics sink.
pub struct FrameCtx<'a> {
    /// Current simulated time.
    pub time: f64,
    /// The mobility trace (positions of all learning vehicles).
    pub trace: &'a MobilityTrace,
    /// The radio (used by RSU links; backend links use
    /// [`FrameCtx::backend_message`]).
    pub channel: &'a Channel,
    /// Busy-until times per node — infrastructure exchanges must respect
    /// ongoing V2V sessions.
    pub busy_until: &'a [f64],
    rng: &'a mut rand::rngs::StdRng,
    /// Metrics sink.
    pub metrics: &'a mut Metrics,
    loss_model: &'a LossModel,
    codec: Codec,
    obs: &'a ObsSink,
}

impl FrameCtx<'_> {
    /// The RNG for protocol-level randomness.
    pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
        self.rng
    }

    /// The run's model codec; see [`SessionCtx::codec`]. Infrastructure
    /// methods charge their backend model messages through it (at ψ = 1
    /// for the uncompressed baselines).
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Simulates one backend (cellular) message of a model-sized payload:
    /// the paper assumes *no bandwidth constraint* to the backend but, under
    /// wireless loss, draws a loss "uniformly sampled from the distance-loss
    /// lookup table" per communication. Returns whether the message got
    /// through; records it as a model send.
    pub fn backend_message(&mut self, bytes: usize) -> bool {
        use rand::RngExt as _;
        let per = self.loss_model.sample_uniform_per(self.rng);
        // Message-level Bernoulli: a single end-to-end success draw (the
        // backend is not packetized by the paper's model).
        let delivered = per <= 0.0 || self.rng.random::<f32>() >= per;
        self.metrics.record_model_send(delivered, bytes, 0.0);
        if self.obs.enabled() {
            self.obs.add("bytes_tx", bytes as u64);
            if delivered {
                self.obs.add("bytes_delivered", bytes as u64);
            } else {
                self.obs.add("transfers_failed", 1);
            }
            self.obs.emit(
                "backend",
                &[
                    ("t", self.time.into()),
                    ("bytes", bytes.into()),
                    ("delivered", delivered.into()),
                ],
            );
        }
        delivered
    }

    /// The observability sink for this run; see [`SessionCtx::obs`].
    pub fn obs(&self) -> &ObsSink {
        self.obs
    }
}

/// What an open session asks the runtime to do next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionStep {
    /// Move one payload over the link; its [`TransferOutcome`] arrives at
    /// the next [`CollabAlgorithm::session_step`] call. Under contention
    /// the transfer streams across airtime windows; without contention it
    /// completes synchronously.
    Transfer(TransferSpec),
    /// The protocol is finished; the runtime calls
    /// [`CollabAlgorithm::session_close`] next.
    Done,
}

/// A collaborative-training method runnable by the [`Runtime`].
///
/// Pairwise exchanges speak the session lifecycle: when the matcher pairs
/// two vehicles the runtime calls [`CollabAlgorithm::session_open`]; every
/// requested [`SessionStep::Transfer`] comes back through
/// [`CollabAlgorithm::session_step`] with its outcome; and
/// [`CollabAlgorithm::session_close`] finalizes state — also when the
/// runtime force-closes a session at contact end. The provided
/// [`CollabAlgorithm::encounter`] drives the whole lifecycle synchronously
/// over one [`SessionCtx`], which is how the retained [`mod@reference`] loop
/// (and the event loop's no-contention mode) executes sessions.
pub trait CollabAlgorithm {
    /// The task sample type (evaluation needs a held-out set of these).
    type Sample;

    /// Per-session protocol state carried between lifecycle calls.
    type Session;

    /// Number of participating vehicles.
    fn n_nodes(&self) -> usize;

    /// The current model of a node (for inspection / driving evaluation).
    fn model(&self, node: usize) -> &ParamVec;

    /// Performs `iters` local training iterations on `node` and returns the
    /// training-kernel statistics drained from the node's learner (zero for
    /// uninstrumented implementations). The runtime aggregates them into
    /// the `train.*` observability counters.
    fn local_training(
        &mut self,
        node: usize,
        iters: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> crate::learner::TrainStats;

    /// Opens a pairwise session between `ctx.i` and `ctx.j`. Return the
    /// initial protocol state plus the first step, or `None` to decline the
    /// pairing (no session happens; both nodes stay free).
    fn session_open(&mut self, ctx: &mut SessionCtx<'_>) -> Option<(Self::Session, SessionStep)>;

    /// Handles the outcome of the previously requested transfer and returns
    /// the next step. Under a forced close (contact ended mid-transfer) the
    /// pending transfer is reported as failed and any further requested
    /// transfers fail immediately with zero airtime.
    fn session_step(
        &mut self,
        state: &mut Self::Session,
        outcome: TransferOutcome,
        ctx: &mut SessionCtx<'_>,
    ) -> SessionStep;

    /// Closes the session — after [`SessionStep::Done`], or forced at
    /// contact end — finalizing protocol state. Returns the session
    /// duration in seconds (both nodes were busy that long).
    fn session_close(&mut self, state: Self::Session, ctx: &mut SessionCtx<'_>) -> f64;

    /// Handles a pairwise encounter synchronously; returns the session
    /// duration in seconds (both nodes stay busy that long). The default
    /// drives the session lifecycle to completion over `link` — override
    /// only to bypass the lifecycle entirely.
    fn encounter(&mut self, i: usize, j: usize, link: &mut SessionCtx<'_>) -> f64
    where
        Self: Sized,
    {
        debug_assert!(i == link.i && j == link.j, "encounter ids must match the session ctx");
        drive_session(self, link)
    }

    /// Ranks a potential encounter for greedy pair matching (higher =
    /// served first). The default is 0 — no prioritization; pairs are
    /// served in arbitrary (encounter-enumeration) order, which is what the
    /// model-sharing-only baselines do. LbChat overrides this with the
    /// Eq. (5) score computed from shared routes — its route-sharing
    /// advantage. Return `-inf` to opt out of V2V pairing entirely
    /// (infrastructure-only methods).
    fn pair_priority(&self, _i: usize, _j: usize, _est: &ContactEstimate) -> f64 {
        0.0
    }

    /// Per-frame hook for infrastructure communication (server rounds,
    /// RSUs). Default: nothing.
    fn on_frame(&mut self, _ctx: &mut FrameCtx<'_>) {}

    /// Mean evaluation loss across all nodes on a held-out sample set.
    fn mean_eval_loss(&self, eval: &[Self::Sample]) -> f64;

    /// Display name (table headers).
    fn name(&self) -> &'static str;
}

/// Drives one session's full lifecycle synchronously over `ctx`: open, run
/// every requested transfer to completion in place, step, close. This is
/// the execution mode of the [`mod@reference`] loop and of the event loop with
/// contention disabled.
pub fn drive_session<A: CollabAlgorithm>(algo: &mut A, ctx: &mut SessionCtx<'_>) -> f64 {
    let Some((mut state, mut step)) = algo.session_open(ctx) else {
        return 0.0;
    };
    while let SessionStep::Transfer(spec) = step {
        let out = ctx.run_spec(&spec);
        step = algo.session_step(&mut state, out, ctx);
    }
    algo.session_close(state, ctx)
}

/// Per-pair cooldown clocks over the unordered pairs `{i, j}`, stored
/// triangularly — `n(n-1)/2` slots instead of the dense `n²` matrix the
/// frame loop used, so memory stays linear in the pair count ahead of
/// 100k-vehicle fleets.
#[derive(Debug, Clone)]
pub struct PairCooldown {
    until: Vec<f64>,
}

impl PairCooldown {
    /// Cooldown clocks for `n` nodes, all initially expired.
    pub fn new(n: usize) -> Self {
        Self { until: vec![0.0; n.saturating_sub(1) * n / 2] }
    }

    /// Triangular slot of the unordered pair `{i, j}` with `i != j`.
    fn slot(i: usize, j: usize) -> usize {
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        hi * (hi - 1) / 2 + lo
    }

    /// The time until which the pair `{i, j}` is cooling down.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.until[Self::slot(i, j)]
    }

    /// Sets the pair's cooldown clock.
    pub fn set(&mut self, i: usize, j: usize, until: f64) {
        self.until[Self::slot(i, j)] = until;
    }
}

/// The shared simulation runtime.
#[derive(Debug, Clone)]
pub struct Runtime {
    config: RuntimeConfig,
}

impl Runtime {
    /// Creates a runtime.
    pub fn new(config: RuntimeConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Runs `algo` over `trace` for the configured duration on the
    /// discrete-event scheduler, evaluating on `eval` along the way.
    /// Returns the collected metrics, or a [`RuntimeError`] when the trace
    /// cannot host the algorithm.
    ///
    /// With [`RuntimeConfig::contention`] unset this reproduces
    /// [`Runtime::run_reference`] bit for bit.
    // audit:entry(hot)
    pub fn run<A: CollabAlgorithm>(
        &self,
        algo: &mut A,
        trace: &MobilityTrace,
        eval: &[A::Sample],
    ) -> Result<Metrics, RuntimeError> {
        check_trace(trace, algo.n_nodes())?;
        Ok(event_loop::run(&self.config, algo, trace, eval))
    }

    /// Runs `algo` on the retained synchronous frame loop ([`mod@reference`]) —
    /// the pre-event-runtime semantics, kept as the equivalence baseline.
    pub fn run_reference<A: CollabAlgorithm>(
        &self,
        algo: &mut A,
        trace: &MobilityTrace,
        eval: &[A::Sample],
    ) -> Result<Metrics, RuntimeError> {
        check_trace(trace, algo.n_nodes())?;
        Ok(reference::run(&self.config, algo, trace, eval))
    }
}

/// Validates that `trace` can host `nodes` agents.
fn check_trace(trace: &MobilityTrace, nodes: usize) -> Result<(), RuntimeError> {
    if trace.n_agents() < nodes {
        return Err(RuntimeError::TraceTooSmall { agents: trace.n_agents(), nodes });
    }
    Ok(())
}

/// One `round` event per loss-curve sample: the quantity Fig. 2 plots.
fn emit_round(obs: &ObsSink, method: &str, t: f64, loss: f64) {
    if obs.enabled() {
        obs.add("rounds", 1);
        obs.emit("round", &[("method", method.into()), ("t", t.into()), ("loss", loss.into())]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::geom::Vec2;

    /// A do-nothing algorithm counting callbacks — exercises the loop
    /// mechanics without any learning. One 15 kB transfer per session.
    pub(super) struct Probe {
        pub(super) n: usize,
        pub(super) params: ParamVec,
        pub(super) train_calls: u64,
        pub(super) encounters: u64,
        pub(super) frames: u64,
    }

    impl Probe {
        pub(super) fn new(n: usize) -> Self {
            Self { n, params: ParamVec::zeros(1), train_calls: 0, encounters: 0, frames: 0 }
        }
    }

    impl CollabAlgorithm for Probe {
        type Sample = ();
        type Session = ();

        fn n_nodes(&self) -> usize {
            self.n
        }
        fn model(&self, _node: usize) -> &ParamVec {
            &self.params
        }
        fn local_training(
            &mut self,
            _n: usize,
            iters: usize,
            _r: &mut rand::rngs::StdRng,
        ) -> crate::learner::TrainStats {
            self.train_calls += iters as u64;
            crate::learner::TrainStats::default()
        }
        fn session_open(&mut self, _ctx: &mut SessionCtx<'_>) -> Option<((), SessionStep)> {
            self.encounters += 1;
            // Move a small payload to exercise the link.
            Some(((), SessionStep::Transfer(TransferSpec::link(15_000, 5.0))))
        }
        fn session_step(
            &mut self,
            _state: &mut (),
            out: TransferOutcome,
            ctx: &mut SessionCtx<'_>,
        ) -> SessionStep {
            ctx.metrics.record_coreset_send(out.is_delivered(), 15_000, out.elapsed());
            SessionStep::Done
        }
        fn session_close(&mut self, _state: (), ctx: &mut SessionCtx<'_>) -> f64 {
            ctx.elapsed()
        }
        fn on_frame(&mut self, _ctx: &mut FrameCtx<'_>) {
            self.frames += 1;
        }
        fn mean_eval_loss(&self, _eval: &[()]) -> f64 {
            1.0
        }
        fn name(&self) -> &'static str {
            "probe"
        }
    }

    pub(super) fn two_vehicle_trace(seconds: f64) -> MobilityTrace {
        // Two vehicles parked 100 m apart: permanently in contact.
        let frames = (seconds * 2.0) as usize + 1;
        MobilityTrace::new(
            2.0,
            vec![
                vec![Vec2::ZERO; frames],
                vec![Vec2::new(100.0, 0.0); frames],
            ],
        )
    }

    fn far_trace(seconds: f64) -> MobilityTrace {
        let frames = (seconds * 2.0) as usize + 1;
        MobilityTrace::new(
            2.0,
            vec![
                vec![Vec2::ZERO; frames],
                vec![Vec2::new(2000.0, 0.0); frames],
            ],
        )
    }

    fn runtime(duration: f64) -> Runtime {
        Runtime::new(RuntimeConfig {
            duration,
            eval_every: 30.0,
            pair_cooldown: 20.0,
            ..RuntimeConfig::default()
        })
    }

    fn run_ok(rt: &Runtime, probe: &mut Probe, trace: &MobilityTrace) -> Metrics {
        match rt.run(probe, trace, &[]) {
            Ok(m) => m,
            Err(e) => panic!("runtime must accept this trace: {e}"),
        }
    }

    #[test]
    fn encounters_happen_in_range() {
        let trace = two_vehicle_trace(120.0);
        let mut probe = Probe::new(2);
        let m = run_ok(&runtime(120.0), &mut probe, &trace);
        assert!(probe.encounters >= 3, "cooldown allows several sessions: {}", probe.encounters);
        assert_eq!(m.sessions, probe.encounters);
        assert!(m.coreset_receives > 0);
    }

    #[test]
    fn no_encounters_out_of_range() {
        let trace = far_trace(60.0);
        let mut probe = Probe::new(2);
        run_ok(&runtime(60.0), &mut probe, &trace);
        assert_eq!(probe.encounters, 0);
    }

    #[test]
    fn training_iterations_match_rate() {
        let trace = far_trace(100.0);
        let mut probe = Probe::new(2);
        let m = run_ok(&runtime(100.0), &mut probe, &trace);
        // 2 nodes * 100 s * 2 iters/s = 400.
        assert_eq!(m.train_iterations, 400);
        assert_eq!(probe.train_calls, 400);
    }

    #[test]
    fn loss_curve_sampled_periodically() {
        let trace = far_trace(100.0);
        let mut probe = Probe::new(2);
        let m = run_ok(&runtime(100.0), &mut probe, &trace);
        // 0, 30, 60, 90 + final.
        assert_eq!(m.loss_curve.len(), 5);
        assert_eq!(m.loss_curve.last().map(|p| p.0), Some(100.0));
    }

    #[test]
    fn on_frame_called_every_frame() {
        let trace = far_trace(50.0);
        let mut probe = Probe::new(2);
        run_ok(&runtime(50.0), &mut probe, &trace);
        assert_eq!(probe.frames, 100, "2 fps over 50 s");
    }

    #[test]
    fn pair_cooldown_limits_session_rate() {
        let trace = two_vehicle_trace(100.0);
        let mut probe = Probe::new(2);
        // 100 s with a 50 s cooldown and near-instant sessions: at most 3
        // sessions can fit (t=0, ~50, ~100).
        let rt = Runtime::new(RuntimeConfig {
            duration: 100.0,
            pair_cooldown: 50.0,
            ..RuntimeConfig::default()
        });
        let m = run_ok(&rt, &mut probe, &trace);
        assert!(m.sessions <= 3, "cooldown must limit sessions: {}", m.sessions);
        assert!(m.sessions >= 2);
    }

    #[test]
    fn busy_nodes_do_not_train() {
        // An algorithm whose sessions take 10 s: training iterations are
        // suppressed during the busy window.
        struct Slow {
            params: ParamVec,
            train_calls: u64,
        }
        impl CollabAlgorithm for Slow {
            type Sample = ();
            type Session = ();
            fn n_nodes(&self) -> usize {
                2
            }
            fn model(&self, _n: usize) -> &ParamVec {
                &self.params
            }
            fn local_training(
                &mut self,
                _n: usize,
                iters: usize,
                _r: &mut rand::rngs::StdRng,
            ) -> crate::learner::TrainStats {
                self.train_calls += iters as u64;
                crate::learner::TrainStats::default()
            }
            fn session_open(&mut self, ctx: &mut SessionCtx<'_>) -> Option<((), SessionStep)> {
                ctx.charge(10.0);
                Some(((), SessionStep::Done))
            }
            fn session_step(
                &mut self,
                _state: &mut (),
                _out: TransferOutcome,
                _ctx: &mut SessionCtx<'_>,
            ) -> SessionStep {
                SessionStep::Done
            }
            fn session_close(&mut self, _state: (), ctx: &mut SessionCtx<'_>) -> f64 {
                ctx.elapsed()
            }
            fn mean_eval_loss(&self, _e: &[()]) -> f64 {
                0.0
            }
            fn name(&self) -> &'static str {
                "slow"
            }
        }
        let trace = two_vehicle_trace(100.0);
        let mut slow = Slow { params: ParamVec::zeros(1), train_calls: 0 };
        let rt = Runtime::new(RuntimeConfig {
            duration: 100.0,
            pair_cooldown: 1000.0, // single session
            ..RuntimeConfig::default()
        });
        rt.run(&mut slow, &trace, &[]).map_or_else(|e| panic!("{e}"), |_| ());
        // 2 nodes * 100 s * 2 it/s = 400 if never busy; one 10 s session
        // for both nodes removes ~40 iterations.
        assert!(slow.train_calls <= 365, "busy time must suppress training: {}", slow.train_calls);
        assert!(slow.train_calls >= 330);
    }

    #[test]
    fn obs_sink_records_runtime_events() {
        let trace = two_vehicle_trace(100.0);
        let sink = ObsSink::recording();
        let mut probe = Probe::new(2);
        let rt = Runtime::new(RuntimeConfig {
            duration: 100.0,
            eval_every: 30.0,
            pair_cooldown: 20.0,
            obs: sink.clone(),
            ..RuntimeConfig::default()
        });
        let m = run_ok(&rt, &mut probe, &trace);
        let events = sink.events();
        let count = |k: &str| events.iter().filter(|e| e.kind == k).count() as u64;
        assert_eq!(count("session"), m.sessions);
        assert_eq!(count("round") as usize, m.loss_curve.len());
        // The probe moves one 15 kB payload per session.
        assert_eq!(count("transfer"), m.sessions);
        assert_eq!(sink.counters()["sessions"], m.sessions);
        assert_eq!(sink.counters()["bytes_tx"], m.sessions * 15_000);
        assert_eq!(sink.counters()["rounds"] as usize, m.loss_curve.len());
        let session = match events.iter().find(|e| e.kind == "session") {
            Some(e) => e,
            None => panic!("a session event must exist"),
        };
        for field in ["i", "j", "t", "priority", "duration_s"] {
            assert!(session.get(field).is_some(), "session event missing {field}");
        }
        let transfer = match events.iter().find(|e| e.kind == "transfer") {
            Some(e) => e,
            None => panic!("a transfer event must exist"),
        };
        assert_eq!(transfer.get("bytes"), Some(&crate::obs::Json::UInt(15_000)));
    }

    #[test]
    fn builder_accepts_sane_configs() {
        let cfg = RuntimeConfig::builder()
            .duration(100.0)
            .train_iters_per_second(0.0)
            .eval_every(10.0)
            .pair_cooldown(0.0)
            .route_share_samples(16)
            .seed(99)
            .build()
            .expect("all fields in domain");
        assert_eq!(cfg.duration, 100.0);
        assert_eq!(cfg.route_share_samples, 16);
        assert_eq!(cfg.seed, 99);
        // Untouched knobs keep their defaults.
        assert_eq!(cfg.contact_reference_time, RuntimeConfig::default().contact_reference_time);
        assert!(cfg.contention.is_none());
    }

    #[test]
    fn builder_rejects_nonsense() {
        use crate::config::ConfigError;
        assert!(matches!(
            RuntimeConfig::builder().duration(-3600.0).build(),
            Err(ConfigError::NonPositive { field: "duration", .. })
        ));
        assert!(matches!(
            RuntimeConfig::builder().eval_every(0.0).build(),
            Err(ConfigError::NonPositive { field: "eval_every", .. })
        ));
        assert!(RuntimeConfig::builder().duration(f64::NAN).build().is_err());
        assert!(RuntimeConfig::builder().pair_cooldown(-1.0).build().is_err());
        assert!(RuntimeConfig::builder().train_iters_per_second(f64::INFINITY).build().is_err());
        let bad_medium = simnet::channel::MediumConfig { window_s: 0.0, ..Default::default() };
        assert!(RuntimeConfig::builder().contention(bad_medium).build().is_err());
    }

    #[test]
    fn trace_too_small_is_a_typed_error() {
        let trace = two_vehicle_trace(10.0);
        let mut probe = Probe::new(5);
        let err = runtime(10.0).run(&mut probe, &trace, &[]);
        assert_eq!(err.err(), Some(RuntimeError::TraceTooSmall { agents: 2, nodes: 5 }));
        let err = runtime(10.0).run_reference(&mut probe, &trace, &[]);
        assert_eq!(err.err(), Some(RuntimeError::TraceTooSmall { agents: 2, nodes: 5 }));
        let msg = RuntimeError::TraceTooSmall { agents: 2, nodes: 5 }.to_string();
        assert!(msg.contains("trace has 2 agents"), "{msg}");
    }

    #[test]
    fn pair_cooldown_is_triangular_and_symmetric() {
        let mut cd = PairCooldown::new(5);
        assert_eq!(cd.until.len(), 10, "n(n-1)/2 slots for n=5");
        cd.set(3, 1, 42.0);
        assert_eq!(cd.get(1, 3), 42.0);
        assert_eq!(cd.get(3, 1), 42.0);
        assert_eq!(cd.get(0, 4), 0.0);
        cd.set(0, 4, 7.0);
        assert_eq!(cd.get(4, 0), 7.0);
        // Distinct pairs never alias.
        assert_eq!(cd.get(1, 3), 42.0);
    }

    #[test]
    fn event_loop_matches_reference_bit_for_bit() {
        // Contention disabled: identical metrics, counters, and loss curves
        // from both engines — including under distance loss, where every
        // packet draws from the shared RNG.
        for loss in [LossModel::None, LossModel::distance_default()] {
            let trace = two_vehicle_trace(150.0);
            let cfg = RuntimeConfig {
                duration: 150.0,
                eval_every: 30.0,
                pair_cooldown: 20.0,
                loss_model: loss,
                ..RuntimeConfig::default()
            };
            let rt = Runtime::new(cfg);
            let mut pe = Probe::new(2);
            let me = run_ok(&rt, &mut pe, &trace);
            let mut pr = Probe::new(2);
            let mr = match rt.run_reference(&mut pr, &trace, &[]) {
                Ok(m) => m,
                Err(e) => panic!("{e}"),
            };
            assert_eq!(me.loss_curve, mr.loss_curve);
            assert_eq!(me.sessions, mr.sessions);
            assert_eq!(me.coreset_sends, mr.coreset_sends);
            assert_eq!(me.coreset_receives, mr.coreset_receives);
            assert_eq!(me.bytes_delivered, mr.bytes_delivered);
            assert_eq!(me.comm_seconds.to_bits(), mr.comm_seconds.to_bits());
            assert_eq!(me.train_iterations, mr.train_iterations);
            assert_eq!(pe.encounters, pr.encounters);
            assert_eq!(pe.train_calls, pr.train_calls);
            assert_eq!(pe.frames, pr.frames);
        }
    }
}
