//! The retained synchronous frame loop — the pre-event-runtime semantics,
//! verbatim (the `coreset::reference` / `vnn::reference` pattern).
//!
//! The discrete-event loop with contention disabled must reproduce this
//! loop's metrics bit for bit; the equivalence tests pin that. Keep this
//! file boring: no optimizations, no restructuring — it is the spec.
//!
//! One shared exception: encounter discovery and route sampling go through
//! [`EncounterGrid`] and [`RouteCache`], the same components the event loop
//! uses. Both carry their *own* verbatim reference arms inside `simnet`
//! ([`MobilityTrace::encounters_at`] / [`MobilityTrace::future`]) and are
//! proptested byte-identical to them, so this loop's semantics are
//! unchanged — and the two engines keep emitting identical
//! `net.encounter.*` counters.

use super::{emit_round, CollabAlgorithm, FrameCtx, RuntimeConfig, SessionCtx};
use crate::metrics::Metrics;
use rand::SeedableRng;
use simnet::channel::Channel;
use simnet::contact::{ContactEstimate, ContactPredictor};
use simnet::grid::EncounterGrid;
use simnet::trace::{Encounter, MobilityTrace, RouteCache};

/// Runs `algo` over `trace` with the synchronous frame loop. The caller
/// ([`super::Runtime::run_reference`]) has already validated the trace size.
pub fn run<A: CollabAlgorithm>(
    cfg: &RuntimeConfig,
    algo: &mut A,
    trace: &MobilityTrace,
    eval: &[A::Sample],
) -> Metrics {
    let n = algo.n_nodes();
    let dt = 1.0 / trace.fps();
    let channel = Channel::new(cfg.radio.clone(), cfg.loss_model.clone());
    let predictor = ContactPredictor::new(
        cfg.radio.range_m,
        cfg.radio.max_retx,
        cfg.loss_model.clone(),
        cfg.contact_reference_time,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed.wrapping_add(0xC0FFEE));
    let mut metrics = Metrics::new();
    let mut busy_until = vec![0.0f64; n];
    let mut pair_cooldown_until = vec![0.0f64; n * n];
    let mut train_debt = vec![0.0f64; n];
    let mut next_eval = 0.0f64;
    let active: Vec<usize> = (0..n).collect();
    let mut grid = EncounterGrid::new();
    let mut encounters: Vec<Encounter> = Vec::new();
    let mut routes = RouteCache::new(n, cfg.route_share_samples);

    let mut time = 0.0f64;
    while time < cfg.duration {
        // 1. Infrastructure hook.
        {
            let mut fctx = FrameCtx {
                time,
                trace,
                channel: &channel,
                busy_until: &busy_until,
                rng: &mut rng,
                metrics: &mut metrics,
                loss_model: &cfg.loss_model,
                codec: cfg.codec,
                obs: &cfg.obs,
            };
            algo.on_frame(&mut fctx);
        }

        // 2. Encounters among free vehicles (grid ≡ all-pairs, routes
        // sampled once per agent per frame — see the module docs).
        routes.begin_frame();
        let stats =
            grid.encounters_into(trace, time, cfg.radio.range_m, &active, &mut encounters);
        if cfg.obs.enabled() {
            cfg.obs.add("net.encounter.candidates", stats.candidates);
            cfg.obs.add("net.encounter.cells", stats.cells);
        }
        let mut candidates: Vec<(f64, usize, usize, ContactEstimate)> = Vec::new();
        for e in &encounters {
            let (i, j) = (e.a, e.b);
            if busy_until[i] > time || busy_until[j] > time {
                continue;
            }
            if pair_cooldown_until[pair_idx(i, j, n)] > time {
                continue;
            }
            let (fut_i, fut_j) = routes.pair(trace, i, j, time, dt);
            let est = predictor.estimate(fut_i, fut_j, dt);
            let score = algo.pair_priority(i, j, &est);
            if !score.is_finite() {
                continue; // method opted out of this pairing
            }
            candidates.push((score, i, j, est));
        }
        // Greedy matching by descending priority — each vehicle serves
        // its best-scored neighbor first (§III-A).
        // total_cmp: scores are finite (non-finite ones are filtered
        // above), and a total order never panics mid-sort.
        candidates.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut taken = vec![false; n];
        for (score, i, j, est) in candidates {
            if taken[i] || taken[j] {
                continue;
            }
            taken[i] = true;
            taken[j] = true;
            metrics.sessions += 1;
            let mut link = SessionCtx {
                start: time,
                i,
                j,
                trace,
                channel: &channel,
                rng: &mut rng,
                metrics: &mut metrics,
                est,
                elapsed: 0.0,
                codec: cfg.codec,
                obs: &cfg.obs,
            };
            let duration = algo.encounter(i, j, &mut link);
            if cfg.obs.enabled() {
                cfg.obs.add("sessions", 1);
                cfg.obs.emit(
                    "session",
                    &[
                        ("i", i.into()),
                        ("j", j.into()),
                        ("t", time.into()),
                        ("priority", score.into()),
                        ("duration_s", duration.into()),
                    ],
                );
            }
            let until = time + duration.max(dt);
            busy_until[i] = until;
            busy_until[j] = until;
            pair_cooldown_until[pair_idx(i, j, n)] = until + cfg.pair_cooldown;
            pair_cooldown_until[pair_idx(j, i, n)] = until + cfg.pair_cooldown;
        }

        // 3. Local training for free vehicles (fractional iteration
        // accounting keeps any iters-per-second rate exact over time).
        for v in 0..n {
            if busy_until[v] > time {
                continue;
            }
            train_debt[v] += cfg.train_iters_per_second * dt;
            let iters = train_debt[v].floor() as usize;
            if iters > 0 {
                train_debt[v] -= iters as f64;
                let stats = algo.local_training(v, iters, &mut rng);
                metrics.train_iterations += iters as u64;
                if cfg.obs.enabled() && stats.batches > 0 {
                    cfg.obs.add("train.batch", stats.batches);
                    cfg.obs.add("train.samples", stats.samples);
                    cfg.obs.add("train.scratch_reuse", stats.scratch_reuse);
                }
            }
        }

        // 4. Periodic evaluation.
        if time >= next_eval {
            let loss = algo.mean_eval_loss(eval);
            metrics.record_loss(time, loss);
            emit_round(&cfg.obs, algo.name(), time, loss);
            next_eval += cfg.eval_every;
        }

        time += dt;
    }
    let loss = algo.mean_eval_loss(eval);
    metrics.record_loss(cfg.duration, loss);
    emit_round(&cfg.obs, algo.name(), cfg.duration, loss);
    metrics
}

/// Flat index of the ordered pair `(i, j)` in the `n × n` cooldown
/// matrix. Both ids come from the trace roster, so `i < n` and `j < n`
/// by construction and the product stays within the `n * n` allocation.
/// (The event loop uses the triangular [`super::PairCooldown`] instead;
/// this dense form is part of the frozen reference semantics.)
fn pair_idx(i: usize, j: usize, n: usize) -> usize {
    i * n + j
}
