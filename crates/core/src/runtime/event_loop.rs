//! The discrete-event execution engine behind [`super::Runtime::run`].
//!
//! Frames, session opens/closes, streaming transfer steps, training slices,
//! and evaluations are events on the deterministic queue in [`super::sched`].
//! Two execution modes share the scaffolding:
//!
//! * **Compatibility** ([`RuntimeConfig::contention`] = `None`): each frame
//!   pushes its sessions, training slices, and evaluation as same-timestamp
//!   events in phase order, and every session runs synchronously at its
//!   `ContactOpen` through [`super::drive_session`] on the shared RNG —
//!   which reproduces [`super::reference`] bit for bit.
//! * **Contention**: sessions become long-lived records whose transfers
//!   stream packet windows that contend for per-cell airtime on a
//!   [`Medium`]. Each session draws from its own seeded RNG, and a window's
//!   fair share / collision loss come from the *previous* window's load —
//!   so same-window steps are order-independent and shard over
//!   [`crate::exec`] with a fixed-order reduction, keeping jobs=1 ≡ jobs=N
//!   bit-identical.

use super::sched::{Event, EventQueue};
use super::{
    emit_round, record_transfer_obs, CollabAlgorithm, FrameCtx, PairCooldown, RuntimeConfig,
    SessionCtx, SessionStep,
};
use crate::exec;
use crate::metrics::Metrics;
use rand::{RngExt, SeedableRng};
use simnet::channel::{Channel, Medium, TransferOutcome, TransferSpec, DEAD_LINK_ATTEMPTS};
use simnet::contact::{ContactEstimate, ContactPredictor};
use simnet::geom::Vec2;
use simnet::grid::EncounterGrid;
use simnet::trace::{Encounter, MobilityTrace, RouteCache};

/// A forcibly closed session that keeps requesting transfers gets each fed
/// an instant failure; after this many the runtime abandons the protocol
/// and closes anyway (guards against a non-terminating `session_step`).
const FORCED_CLOSE_FEEDS: u32 = 64;

/// Runs `algo` over `trace` on the event scheduler. The caller
/// ([`super::Runtime::run`]) has already validated the trace size.
pub(super) fn run<A: CollabAlgorithm>(
    cfg: &RuntimeConfig,
    algo: &mut A,
    trace: &MobilityTrace,
    eval: &[A::Sample],
) -> Metrics {
    let n = algo.n_nodes();
    let mut el = EventLoop {
        cfg,
        trace,
        eval,
        n,
        dt: 1.0 / trace.fps(),
        channel: Channel::new(cfg.radio.clone(), cfg.loss_model.clone()),
        predictor: ContactPredictor::new(
            cfg.radio.range_m,
            cfg.radio.max_retx,
            cfg.loss_model.clone(),
            cfg.contact_reference_time,
        ),
        rng: rand::rngs::StdRng::seed_from_u64(cfg.seed.wrapping_add(0xC0FFEE)),
        metrics: Metrics::new(),
        busy_until: vec![0.0f64; n],
        cooldown: PairCooldown::new(n),
        train_debt: vec![0.0f64; n],
        next_eval: 0.0,
        queue: EventQueue::new(),
        medium: cfg.contention.clone().map(Medium::new),
        sessions: Vec::new(),
        active: (0..n).collect(),
        grid: EncounterGrid::new(),
        encounters: Vec::new(),
        routes: RouteCache::new(n, cfg.route_share_samples),
    };
    el.queue.push(0.0, Event::Frame);
    while let Some(t) = el.queue.peek_time() {
        if t >= cfg.duration {
            break;
        }
        let Some((t, ev)) = el.queue.pop() else { break };
        el.dispatch(algo, t, ev);
    }
    // Contention mode: sessions whose contact outlives the run close at the
    // horizon so their protocols finalize (aggregation happens at close).
    for s in 0..el.sessions.len() {
        if !el.sessions[s].closed {
            el.force_close(algo, s, cfg.duration);
        }
    }
    let loss = algo.mean_eval_loss(eval);
    el.metrics.record_loss(cfg.duration, loss);
    emit_round(&cfg.obs, algo.name(), cfg.duration, loss);
    el.metrics
}

/// One live (contention-mode) session between ContactOpen and close.
struct Live<S> {
    i: usize,
    j: usize,
    est: ContactEstimate,
    /// Open time in simulated seconds.
    start: f64,
    /// Matching priority the pair won with (for the `session` event).
    score: f64,
    /// Per-session RNG (seeded from the session sequence number so outcomes
    /// are independent of worker count); `None` only while a callback or a
    /// window job has it checked out.
    rng: Option<rand::rngs::StdRng>,
    /// Protocol time consumed so far (airtime + explicit charges) — what
    /// [`SessionCtx::elapsed`] reports to the algorithm.
    elapsed: f64,
    /// Algorithm state; `None` before open returns, while checked out to a
    /// callback, and after close.
    state: Option<S>,
    /// The in-flight streaming transfer, if any.
    pending: Option<Pending>,
    closed: bool,
}

/// A streaming transfer in flight.
struct Pending {
    spec: TransferSpec,
    /// Session-clock time ([`SessionCtx::now`]) when the transfer was
    /// requested — the `t` stamped on its eventual `transfer` event, matching
    /// the synchronous path.
    t0: f64,
    /// Airtime consumed so far, seconds (the transfer-local clock the
    /// deadline is measured on).
    airtime: f64,
    delivered_packets: usize,
    n_packets: usize,
    /// Consecutive failed attempts on the current packet.
    fail_streak: u32,
}

/// One session's share of one medium window: the unit that shards across
/// workers. Inputs are fixed before the parallel phase; `stream_window`
/// mutates only owned state, so results are identical for any worker count.
struct WindowJob {
    session: usize,
    cell: (i64, i64),
    pending: Pending,
    rng: rand::rngs::StdRng,
    /// Fair airtime share this window, seconds.
    share_s: f64,
    /// Combined per-packet error rate (link loss + collision extra).
    per: f32,
    /// Whether a collision term is in effect (for drop attribution).
    contended: bool,
    pt: f64,
    // Outputs:
    consumed: f64,
    drops: u64,
    status: WindowStatus,
}

#[derive(Clone, Copy, PartialEq)]
enum WindowStatus {
    /// Window share exhausted with payload remaining.
    InProgress,
    /// The share was too small to fit even one packet.
    Backoff,
    /// All packets delivered.
    Complete,
    /// Deadline passed or the link died.
    Failed,
}

/// Streams packets of one transfer through one window's airtime share.
/// Pure per-job: touches only the job's own pending state and RNG.
fn stream_window(job: &mut WindowJob) {
    if job.share_s < job.pt {
        job.status = WindowStatus::Backoff;
        return;
    }
    let p = &mut job.pending;
    let mut local = 0.0f64;
    job.status = loop {
        if p.delivered_packets >= p.n_packets {
            break WindowStatus::Complete;
        }
        if p.fail_streak >= DEAD_LINK_ATTEMPTS {
            break WindowStatus::Failed;
        }
        if p.airtime + job.pt > p.spec.deadline {
            break WindowStatus::Failed;
        }
        if local + job.pt > job.share_s {
            break WindowStatus::InProgress;
        }
        p.airtime += job.pt;
        local += job.pt;
        if job.per <= 0.0 || job.rng.random::<f32>() >= job.per {
            p.delivered_packets += 1;
            p.fail_streak = 0;
        } else {
            p.fail_streak += 1;
            if job.contended {
                job.drops += 1;
            }
        }
    };
    job.consumed = local;
}

struct EventLoop<'a, A: CollabAlgorithm> {
    cfg: &'a RuntimeConfig,
    trace: &'a MobilityTrace,
    eval: &'a [A::Sample],
    n: usize,
    dt: f64,
    channel: Channel,
    predictor: ContactPredictor,
    /// The shared (frame-order) RNG: frame hooks, compat-mode sessions, and
    /// training draw from it in event order, exactly like the reference loop.
    rng: rand::rngs::StdRng,
    metrics: Metrics,
    busy_until: Vec<f64>,
    cooldown: PairCooldown,
    train_debt: Vec<f64>,
    next_eval: f64,
    queue: EventQueue<Event>,
    /// `Some` iff contention mode is on.
    medium: Option<Medium>,
    sessions: Vec<Live<A::Session>>,
    /// The full node roster (every node participates in matching).
    active: Vec<usize>,
    /// Spatial-hash encounter discovery — bit-identical to the all-pairs
    /// sweep ([`MobilityTrace::encounters_at`]), O(local density) per frame.
    grid: EncounterGrid,
    /// Reused encounter list the grid refills each frame.
    encounters: Vec<Encounter>,
    /// Per-frame shared-route cache: each agent's future route is sampled
    /// at most once per frame, however many candidate pairs it appears in.
    routes: RouteCache,
}

impl<A: CollabAlgorithm> EventLoop<'_, A> {
    fn dispatch(&mut self, algo: &mut A, t: f64, ev: Event) {
        match ev {
            Event::Frame => self.handle_frame(algo, t),
            Event::ContactOpen { i, j, est, priority } => {
                if self.medium.is_some() {
                    self.open_streaming(algo, i, j, est, priority, t);
                } else {
                    self.open_synchronous(algo, i, j, est, priority, t);
                }
            }
            Event::ContactClose { session } => {
                if !self.sessions[session].closed {
                    self.force_close(algo, session, t);
                }
            }
            Event::TransferStep { session } => {
                // Batch all same-timestamp transfer steps: their window
                // shares come from the previous window's load, so they are
                // order-independent and shard across workers.
                let mut batch = vec![session];
                loop {
                    match self.queue.peek() {
                        Some((t2, Event::TransferStep { session: s })) if t2 == t => {
                            let s = *s;
                            self.queue.pop();
                            batch.push(s);
                        }
                        _ => break,
                    }
                }
                self.handle_transfer_batch(algo, t, batch);
            }
            Event::TrainSlice { node } => self.handle_train_slice(algo, t, node),
            Event::Eval => {
                let loss = algo.mean_eval_loss(self.eval);
                self.metrics.record_loss(t, loss);
                emit_round(&self.cfg.obs, algo.name(), t, loss);
            }
        }
    }

    /// One trace frame: infrastructure hook, pair matching, then the
    /// frame's sessions, training slices, and evaluation pushed as
    /// same-timestamp events in phase order.
    fn handle_frame(&mut self, algo: &mut A, t: f64) {
        {
            let mut fctx = FrameCtx {
                time: t,
                trace: self.trace,
                channel: &self.channel,
                busy_until: &self.busy_until,
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                loss_model: &self.cfg.loss_model,
                codec: self.cfg.codec,
                obs: &self.cfg.obs,
            };
            algo.on_frame(&mut fctx);
        }

        // Pair matching (identical to the reference loop, with the dense
        // cooldown matrix replaced by the triangular PairCooldown).
        // Encounters come from the spatial hash — bit-identical to the
        // all-pairs sweep — and each agent's shared route is interpolated
        // at most once per frame through the route cache.
        self.routes.begin_frame();
        let stats = self.grid.encounters_into(
            self.trace,
            t,
            self.cfg.radio.range_m,
            &self.active,
            &mut self.encounters,
        );
        if self.cfg.obs.enabled() {
            self.cfg.obs.add("net.encounter.candidates", stats.candidates);
            self.cfg.obs.add("net.encounter.cells", stats.cells);
        }
        let mut candidates: Vec<(f64, usize, usize, ContactEstimate)> = Vec::new();
        for k in 0..self.encounters.len() {
            let e = self.encounters[k];
            let (i, j) = (e.a, e.b);
            if self.busy_until[i] > t || self.busy_until[j] > t {
                continue;
            }
            if self.cooldown.get(i, j) > t {
                continue;
            }
            let (fut_i, fut_j) = self.routes.pair(self.trace, i, j, t, self.dt);
            let est = self.predictor.estimate(fut_i, fut_j, self.dt);
            let score = algo.pair_priority(i, j, &est);
            if !score.is_finite() {
                continue; // method opted out of this pairing
            }
            candidates.push((score, i, j, est));
        }
        // Greedy matching by descending priority — each vehicle serves its
        // best-scored neighbor first (§III-A). total_cmp: scores are finite.
        candidates.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut taken = vec![false; self.n];
        for (score, i, j, est) in candidates {
            if taken[i] || taken[j] {
                continue;
            }
            taken[i] = true;
            taken[j] = true;
            self.queue.push(t, Event::ContactOpen { i, j, est, priority: score });
        }

        for v in 0..self.n {
            self.queue.push(t, Event::TrainSlice { node: v });
        }
        if t >= self.next_eval {
            self.queue.push(t, Event::Eval);
            self.next_eval += self.cfg.eval_every;
        }
        // Frame times accumulate by repeated `+ dt` — the same float
        // sequence as the reference loop's `time += dt`.
        if t + self.dt < self.cfg.duration {
            self.queue.push(t + self.dt, Event::Frame);
        }
    }

    fn handle_train_slice(&mut self, algo: &mut A, t: f64, v: usize) {
        if self.busy_until[v] > t {
            return;
        }
        // Fractional iteration accounting keeps any rate exact over time.
        self.train_debt[v] += self.cfg.train_iters_per_second * self.dt;
        let iters = self.train_debt[v].floor() as usize;
        if iters > 0 {
            self.train_debt[v] -= iters as f64;
            let stats = algo.local_training(v, iters, &mut self.rng);
            self.metrics.train_iterations += iters as u64;
            if self.cfg.obs.enabled() && stats.batches > 0 {
                self.cfg.obs.add("train.batch", stats.batches);
                self.cfg.obs.add("train.samples", stats.samples);
                self.cfg.obs.add("train.scratch_reuse", stats.scratch_reuse);
            }
        }
    }

    /// Compat-mode session: runs the whole lifecycle synchronously at the
    /// open event on the shared RNG — the reference loop's session phase.
    fn open_synchronous(
        &mut self,
        algo: &mut A,
        i: usize,
        j: usize,
        est: ContactEstimate,
        score: f64,
        t: f64,
    ) {
        self.metrics.sessions += 1;
        let mut link = SessionCtx {
            start: t,
            i,
            j,
            trace: self.trace,
            channel: &self.channel,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            est,
            elapsed: 0.0,
            codec: self.cfg.codec,
            obs: &self.cfg.obs,
        };
        let duration = algo.encounter(i, j, &mut link);
        if self.cfg.obs.enabled() {
            self.cfg.obs.add("sessions", 1);
            self.cfg.obs.emit(
                "session",
                &[
                    ("i", i.into()),
                    ("j", j.into()),
                    ("t", t.into()),
                    ("priority", score.into()),
                    ("duration_s", duration.into()),
                ],
            );
        }
        let until = t + duration.max(self.dt);
        self.busy_until[i] = until;
        self.busy_until[j] = until;
        self.cooldown.set(i, j, until + self.cfg.pair_cooldown);
    }

    /// Contention-mode session open: allocate a live record with its own
    /// seeded RNG, mark both nodes busy for the session's lifetime, and run
    /// `session_open`.
    fn open_streaming(
        &mut self,
        algo: &mut A,
        i: usize,
        j: usize,
        est: ContactEstimate,
        score: f64,
        t: f64,
    ) {
        self.metrics.sessions += 1;
        let sid = self.sessions.len();
        let seed = exec::derive_seed(self.cfg.seed, "session", sid as u64);
        self.sessions.push(Live {
            i,
            j,
            est,
            start: t,
            score,
            rng: Some(rand::rngs::StdRng::seed_from_u64(seed)),
            elapsed: 0.0,
            state: None,
            pending: None,
            closed: false,
        });
        if self.cfg.obs.enabled() {
            self.cfg.obs.add("session.opened", 1);
            self.cfg.obs.emit(
                "session.open",
                &[("i", i.into()), ("j", j.into()), ("t", t.into()), ("priority", score.into())],
            );
        }
        let opened = {
            let live = &mut self.sessions[sid];
            let Some(mut rng) = live.rng.take() else { return };
            let mut ctx = SessionCtx {
                start: live.start,
                i,
                j,
                trace: self.trace,
                channel: &self.channel,
                rng: &mut rng,
                metrics: &mut self.metrics,
                est,
                elapsed: live.elapsed,
                codec: self.cfg.codec,
                obs: &self.cfg.obs,
            };
            let opened = algo.session_open(&mut ctx);
            let elapsed = ctx.elapsed;
            let live = &mut self.sessions[sid];
            live.elapsed = elapsed;
            live.rng = Some(rng);
            opened
        };
        match opened {
            None => {
                // Declined pairing: a zero-duration session, like an
                // encounter returning 0 — busy one frame, cooldown applies.
                self.sessions[sid].closed = true;
                self.finish_session(sid, t, 0.0);
            }
            Some((state, step)) => {
                self.sessions[sid].state = Some(state);
                self.busy_until[i] = f64::INFINITY;
                self.busy_until[j] = f64::INFINITY;
                self.queue.push(t + est.duration.max(self.dt), Event::ContactClose { session: sid });
                self.apply_step(algo, sid, step, t);
            }
        }
    }

    /// Applies a session's next step at time `t`: schedules a streaming
    /// transfer, completes zero-byte transfers inline, or closes.
    fn apply_step(&mut self, algo: &mut A, sid: usize, mut step: SessionStep, t: f64) {
        loop {
            match step {
                SessionStep::Done => {
                    self.close_session(algo, sid, t);
                    return;
                }
                SessionStep::Transfer(spec) => {
                    let live = &mut self.sessions[sid];
                    let t0 = live.start + live.elapsed;
                    if spec.bytes == 0 {
                        // Instant, like the synchronous channel.
                        let out = TransferOutcome::Delivered { elapsed: 0.0 };
                        record_transfer_obs(&self.cfg.obs, live.i, live.j, t0, 0, &out);
                        step = self.call_step(algo, sid, out, t);
                        continue;
                    }
                    live.pending = Some(Pending {
                        spec,
                        t0,
                        airtime: 0.0,
                        delivered_packets: 0,
                        n_packets: self.channel.config().packets_for(spec.bytes),
                        fail_streak: 0,
                    });
                    self.schedule_window_step(sid, t);
                    return;
                }
            }
        }
    }

    /// Schedules the session's next window share at the next window
    /// boundary after `t` (boundaries are integer multiples of `window_s`,
    /// so every batch lands on an exactly representable shared timestamp).
    fn schedule_window_step(&mut self, sid: usize, t: f64) {
        let Some(medium) = &self.medium else { return };
        let w = medium.window_index(t);
        let t_next = (w + 1) as f64 * medium.config().window_s;
        self.queue.push(t_next, Event::TransferStep { session: sid });
    }

    /// Runs one window for every session in `batch` (all at time `t`):
    /// serial load registration, parallel packet streaming, then a serial
    /// fixed-order reduction applying outcomes — identical for any worker
    /// count because shares and losses come from the previous window.
    fn handle_transfer_batch(&mut self, algo: &mut A, t: f64, batch: Vec<usize>) {
        let Some(medium) = &mut self.medium else { return };
        medium.advance_to(t);
        let t_next = (medium.window_index(t) + 1) as f64 * medium.config().window_s;
        let pt = self.channel.config().packet_time();
        let mut jobs: Vec<WindowJob> = Vec::with_capacity(batch.len());
        for sid in batch {
            let live = &mut self.sessions[sid];
            if live.closed {
                continue;
            }
            let (Some(pending), Some(rng)) = (live.pending.take(), live.rng.take()) else {
                continue;
            };
            let (pi, pj) = (self.trace.position(live.i, t), self.trace.position(live.j, t));
            let cell = medium.cell_of(Vec2::new((pi.x + pj.x) * 0.5, (pi.y + pj.y) * 0.5));
            let share_s = medium.fair_share(cell);
            let extra = medium.collision_per(cell);
            medium.register(cell);
            let base = self.channel.per_for(pending.spec.loss, self.trace.distance(live.i, live.j, t));
            jobs.push(WindowJob {
                session: sid,
                cell,
                pending,
                rng,
                share_s,
                per: base + extra * (1.0 - base),
                contended: extra > 0.0,
                pt,
                consumed: 0.0,
                drops: 0,
                status: WindowStatus::InProgress,
            });
        }

        exec::par_for_each_mut(&mut jobs, |_, job| stream_window(job));

        // Fixed-order reduction, in pop order.
        let mut finished: Vec<(usize, usize, f64, TransferOutcome)> = Vec::new();
        for job in jobs {
            let sid = job.session;
            medium.book(job.cell, job.consumed);
            if self.cfg.obs.enabled() && job.drops > 0 {
                self.cfg.obs.add("net.contention.drops", job.drops);
            }
            let packet_bytes = self.channel.config().packet_bytes;
            let live = &mut self.sessions[sid];
            live.rng = Some(job.rng);
            match job.status {
                WindowStatus::Backoff | WindowStatus::InProgress => {
                    if job.status == WindowStatus::Backoff && self.cfg.obs.enabled() {
                        self.cfg.obs.add("net.contention.backoff", 1);
                    }
                    live.pending = Some(job.pending);
                    self.queue.push(t_next, Event::TransferStep { session: sid });
                }
                WindowStatus::Complete => {
                    let out = TransferOutcome::Delivered { elapsed: job.pending.airtime };
                    finished.push((sid, job.pending.spec.bytes, job.pending.t0, out));
                }
                WindowStatus::Failed => {
                    let out = TransferOutcome::Failed {
                        elapsed: job.pending.airtime,
                        delivered_bytes: job.pending.delivered_packets * packet_bytes,
                    };
                    finished.push((sid, job.pending.spec.bytes, job.pending.t0, out));
                }
            }
        }
        for (sid, bytes, t0, out) in finished {
            let live = &mut self.sessions[sid];
            live.elapsed += out.elapsed();
            record_transfer_obs(&self.cfg.obs, live.i, live.j, t0, bytes, &out);
            let step = self.call_step(algo, sid, out, t);
            self.apply_step(algo, sid, step, t);
        }
    }

    /// Hands a transfer outcome to the algorithm's `session_step` with the
    /// session's context checked out.
    fn call_step(&mut self, algo: &mut A, sid: usize, out: TransferOutcome, _t: f64) -> SessionStep {
        let live = &mut self.sessions[sid];
        let (Some(mut state), Some(mut rng)) = (live.state.take(), live.rng.take()) else {
            return SessionStep::Done;
        };
        let mut ctx = SessionCtx {
            start: live.start,
            i: live.i,
            j: live.j,
            trace: self.trace,
            channel: &self.channel,
            rng: &mut rng,
            metrics: &mut self.metrics,
            est: live.est,
            elapsed: live.elapsed,
            codec: self.cfg.codec,
            obs: &self.cfg.obs,
        };
        let step = algo.session_step(&mut state, out, &mut ctx);
        let elapsed = ctx.elapsed;
        let live = &mut self.sessions[sid];
        live.elapsed = elapsed;
        live.state = Some(state);
        live.rng = Some(rng);
        step
    }

    /// Force-closes a still-open session at `t` (contact window ended or
    /// the run hit its horizon): the in-flight transfer is reported as
    /// failed, any further requested transfers fail instantly, then the
    /// session closes normally.
    fn force_close(&mut self, algo: &mut A, sid: usize, t: f64) {
        if let Some(p) = self.sessions[sid].pending.take() {
            let out = TransferOutcome::Failed {
                elapsed: p.airtime,
                delivered_bytes: p.delivered_packets * self.channel.config().packet_bytes,
            };
            let live = &mut self.sessions[sid];
            live.elapsed += p.airtime;
            record_transfer_obs(&self.cfg.obs, live.i, live.j, p.t0, p.spec.bytes, &out);
            let mut step = self.call_step(algo, sid, out, t);
            let mut feeds = 0u32;
            while let SessionStep::Transfer(spec) = step {
                feeds += 1;
                if feeds > FORCED_CLOSE_FEEDS {
                    break;
                }
                let out = TransferOutcome::Failed { elapsed: 0.0, delivered_bytes: 0 };
                let live = &self.sessions[sid];
                let t0 = live.start + live.elapsed;
                record_transfer_obs(&self.cfg.obs, live.i, live.j, t0, spec.bytes, &out);
                step = self.call_step(algo, sid, out, t);
            }
        }
        self.close_session(algo, sid, t);
    }

    /// Closes a session: runs `session_close`, frees both nodes, applies
    /// the cooldown, and emits the close events.
    fn close_session(&mut self, algo: &mut A, sid: usize, t: f64) {
        if self.sessions[sid].closed {
            return;
        }
        self.sessions[sid].closed = true;
        let duration = {
            let live = &mut self.sessions[sid];
            let (Some(state), Some(mut rng)) = (live.state.take(), live.rng.take()) else {
                return;
            };
            let mut ctx = SessionCtx {
                start: live.start,
                i: live.i,
                j: live.j,
                trace: self.trace,
                channel: &self.channel,
                rng: &mut rng,
                metrics: &mut self.metrics,
                est: live.est,
                elapsed: live.elapsed,
                codec: self.cfg.codec,
                obs: &self.cfg.obs,
            };
            let duration = algo.session_close(state, &mut ctx);
            let elapsed = ctx.elapsed;
            let live = &mut self.sessions[sid];
            live.elapsed = elapsed;
            live.rng = Some(rng);
            duration
        };
        self.finish_session(sid, t, duration);
    }

    /// Shared tail of every close path: busy/cooldown bookkeeping plus the
    /// `session` (legacy) and `session.close` events.
    fn finish_session(&mut self, sid: usize, t: f64, duration: f64) {
        let live = &self.sessions[sid];
        let (i, j) = (live.i, live.j);
        // The session occupied its nodes until `t` in wall-clock terms even
        // if the protocol consumed less airtime than that.
        let until = t.max(live.start + duration.max(self.dt));
        self.busy_until[i] = until;
        self.busy_until[j] = until;
        self.cooldown.set(i, j, until + self.cfg.pair_cooldown);
        if self.cfg.obs.enabled() {
            self.cfg.obs.add("sessions", 1);
            self.cfg.obs.emit(
                "session",
                &[
                    ("i", i.into()),
                    ("j", j.into()),
                    ("t", live.start.into()),
                    ("priority", live.score.into()),
                    ("duration_s", duration.into()),
                ],
            );
            self.cfg.obs.add("session.closed", 1);
            self.cfg.obs.emit(
                "session.close",
                &[("i", i.into()), ("j", j.into()), ("t", t.into()), ("duration_s", duration.into())],
            );
        }
    }
}
