//! Structured observability: events, counters, gauges, spans, and the
//! run-manifest JSONL format.
//!
//! Every experiment invocation can record what actually happened — per
//! round, per radio transfer, per pairwise chat, per closed-loop trial —
//! as a stream of typed events behind an [`ObsSink`] handle. The
//! experiments harness assembles one such stream per invocation into a
//! **run manifest** under `results/runs/`, and the `summarize_runs`
//! binary renders manifests side by side. `docs/OBSERVABILITY.md`
//! specifies every event type and field.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when off.** A disabled sink ([`ObsSink::disabled`])
//!    is an `Option::None` check per call site; hot paths additionally
//!    guard with [`ObsSink::enabled`] so no field lists are built.
//!    Benches and library users who never opt in pay nothing.
//! 2. **No global state.** The sink is a handle passed through
//!    configuration ([`crate::RuntimeConfig`]'s `obs` field, harness
//!    parameters), never a process-wide singleton — parallel tests and
//!    nested harness invocations cannot contaminate each other's
//!    streams.
//! 3. **Determinism modulo timing.** Everything an event records except
//!    the fields named in [`TIMING_FIELDS`] is a pure function of the
//!    configuration and seed, for any `--jobs` value.
//!    [`ObsSink::canonical_events`] strips timing and sorts, giving a
//!    representation two runs can be compared by.
//! 4. **No dependencies.** The [`json`] submodule carries its own
//!    writer/parser, with exact `u64` handling so seeds survive a round
//!    trip.
//!
//! # Example
//!
//! ```
//! use lbchat::obs::{self, ObsSink};
//!
//! let sink = ObsSink::recording();
//! {
//!     let _timer = sink.span("build-scenario");
//!     sink.add("vehicles", 4);
//!     sink.emit("note", &[("msg", "scenario ready".into())]);
//! } // span recorded on drop
//!
//! let lines = sink.to_jsonl();
//! let parsed = obs::parse_jsonl(&lines).unwrap();
//! assert_eq!(parsed.len(), 2);
//! assert_eq!(sink.counters()["vehicles"], 4);
//! ```

pub mod json;
mod sink;

pub use json::{parse, Json, JsonError};
pub use sink::{current_span, parse_jsonl, Event, GaugeStat, ObsSink, SpanGuard, TIMING_FIELDS};
