//! The event sink: [`ObsSink`], [`Event`], counters, gauges, and spans.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use super::json::{self, Json, JsonError};

/// Event fields that carry wall-clock timing or span identity.
///
/// These are the only fields allowed to differ between two runs of the
/// same seed: everything else is a pure function of the configuration.
/// [`Event::canonical`] strips them so manifests can be compared across
/// `--jobs` settings and machines.
pub const TIMING_FIELDS: &[&str] =
    &["ts_ms", "wall_ms", "started_unix_ms", "span_id", "parent_span"];

/// One recorded event: a kind tag plus ordered key–value fields.
///
/// Serialized as one JSON object per line (`kind` first), which is the
/// unit of the run-manifest format described in `docs/OBSERVABILITY.md`.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The event type, e.g. `"transfer"` or `"cell_finish"`.
    pub kind: String,
    /// The event payload, in emission order (excluding `kind`).
    pub fields: Vec<(String, Json)>,
}

impl Event {
    /// Looks up a field by name.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A field as `f64`, if present and numeric.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key)?.as_f64()
    }

    /// A field as `&str`, if present and a string.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }

    /// The event as a JSON object with `kind` as the first key.
    pub fn to_json(&self) -> Json {
        let mut pairs = Vec::with_capacity(self.fields.len() + 1);
        pairs.push(("kind".to_string(), Json::Str(self.kind.clone())));
        pairs.extend(self.fields.iter().cloned());
        Json::Obj(pairs)
    }

    /// One JSONL line (no trailing newline).
    pub fn line(&self) -> String {
        self.to_json().to_string()
    }

    /// Rebuilds an event from a parsed JSON object; the object must have
    /// a string `kind` field.
    pub fn from_json(v: &Json) -> Result<Event, String> {
        let pairs = v.as_obj().ok_or("event is not a JSON object")?;
        let mut kind = None;
        let mut fields = Vec::with_capacity(pairs.len().saturating_sub(1));
        for (k, val) in pairs {
            if k == "kind" {
                kind = Some(val.as_str().ok_or("\"kind\" is not a string")?.to_string());
            } else {
                fields.push((k.clone(), val.clone()));
            }
        }
        Ok(Event { kind: kind.ok_or("event has no \"kind\" field")?, fields })
    }

    /// The event rendered with all [`TIMING_FIELDS`] removed — the form
    /// that must be identical across `--jobs` settings.
    pub fn canonical(&self) -> String {
        let mut pairs = vec![("kind".to_string(), Json::Str(self.kind.clone()))];
        pairs.extend(
            self.fields
                .iter()
                .filter(|(k, _)| !TIMING_FIELDS.contains(&k.as_str()))
                .cloned(),
        );
        Json::Obj(pairs).to_string()
    }
}

/// Commutative summary of a gauge's observations.
///
/// Gauges aggregate as `{n, sum, min, max}` rather than last-write-wins
/// so that the summary is independent of the order parallel workers
/// report in (`sum` is still a float accumulation, so its last bits may
/// depend on completion order when cells run concurrently; `n`, `min`,
/// and `max` never do).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStat {
    /// Number of observations.
    pub n: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl GaugeStat {
    fn new(v: f64) -> Self {
        GaugeStat { n: 1, sum: v, min: v, max: v }
    }

    fn observe(&mut self, v: f64) {
        self.n += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean of the observations.
    pub fn mean(&self) -> f64 {
        if self.n == 0 { 0.0 } else { self.sum / self.n as f64 }
    }
}

struct Inner {
    t0: Instant,
    events: Mutex<Vec<Event>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, GaugeStat>>,
    next_span: AtomicU64,
}

/// Recovers the guard even if a worker panicked while holding the lock;
/// the sink's data stays usable for post-mortem inspection.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    /// Stack of open span ids on this thread; the top is the parent for
    /// newly opened spans. [`crate::exec`]'s traced fan-outs seed this
    /// stack on worker threads so nesting survives the pool boundary.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The innermost open span on the current thread, if any.
///
/// Capture this before handing work to another thread, then open child
/// spans there with [`ObsSink::span_under`] to keep the parent/child
/// chain intact across the pool boundary.
pub fn current_span() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// A cloneable handle to an event stream, or a no-op.
///
/// All instrumentation in the workspace goes through an `ObsSink`. A
/// *disabled* sink ([`ObsSink::disabled`], also the `Default`) ignores
/// every call and allocates nothing, so hot paths can stay instrumented
/// unconditionally; benches and library users who do not opt in pay only
/// an `Option` check. A *recording* sink ([`ObsSink::recording`])
/// accumulates events, counters, and gauges behind an `Arc`, so clones
/// share one stream — clone freely into worker closures.
///
/// [`ObsSink::scoped`] derives a handle that stamps a `ctx` field on
/// everything it emits; the experiment harness uses this to label each
/// table cell's events without threading labels through every call.
#[derive(Clone, Default)]
pub struct ObsSink {
    inner: Option<Arc<Inner>>,
    ctx: Option<Arc<str>>,
}

impl fmt::Debug for ObsSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsSink")
            .field("enabled", &self.enabled())
            .field("ctx", &self.ctx)
            .finish()
    }
}

impl ObsSink {
    /// A sink that ignores everything. Equivalent to `ObsSink::default()`.
    pub fn disabled() -> Self {
        ObsSink { inner: None, ctx: None }
    }

    /// A fresh recording sink with its own event stream.
    pub fn recording() -> Self {
        ObsSink {
            inner: Some(Arc::new(Inner {
                t0: Instant::now(),
                events: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                next_span: AtomicU64::new(1),
            })),
            ctx: None,
        }
    }

    /// Whether events are being recorded. Guard any instrumentation that
    /// does nontrivial work (formatting, cloning) behind this.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle onto the same stream that stamps `ctx` on every event it
    /// emits. Nested scopes join with `/`: `sink.scoped("LbChat@w").scoped("eval")`
    /// stamps `"LbChat@w/eval"`.
    pub fn scoped(&self, ctx: &str) -> ObsSink {
        let joined = match &self.ctx {
            Some(parent) => format!("{parent}/{ctx}"),
            None => ctx.to_string(),
        };
        ObsSink { inner: self.inner.clone(), ctx: Some(joined.into()) }
    }

    /// Records an event. The sink prepends its `ctx` scope (if any) and
    /// appends `ts_ms`, milliseconds since the sink was created. No-op
    /// when disabled — but prefer guarding with [`ObsSink::enabled`] so
    /// the field list is not even built.
    pub fn emit(&self, kind: &str, fields: &[(&str, Json)]) {
        self.emit_owned(kind, fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect());
    }

    fn emit_owned(&self, kind: &str, fields: Vec<(String, Json)>) {
        let Some(inner) = &self.inner else { return };
        let mut all = Vec::with_capacity(fields.len() + 2);
        if let Some(ctx) = &self.ctx {
            all.push(("ctx".to_string(), Json::Str(ctx.to_string())));
        }
        all.extend(fields);
        all.push(("ts_ms".to_string(), Json::Num(ms_since(inner.t0))));
        lock(&inner.events).push(Event { kind: kind.to_string(), fields: all });
    }

    /// Adds `n` to a monotonic counter. No-op when disabled.
    pub fn add(&self, counter: &str, n: u64) {
        let Some(inner) = &self.inner else { return };
        let mut counters = lock(&inner.counters);
        match counters.get_mut(counter) {
            Some(v) => *v += n,
            None => {
                counters.insert(counter.to_string(), n);
            }
        }
    }

    /// Folds `v` into a gauge's `{n, sum, min, max}` summary. No-op when
    /// disabled.
    pub fn observe(&self, gauge: &str, v: f64) {
        let Some(inner) = &self.inner else { return };
        let mut gauges = lock(&inner.gauges);
        match gauges.get_mut(gauge) {
            Some(g) => g.observe(v),
            None => {
                gauges.insert(gauge.to_string(), GaugeStat::new(v));
            }
        }
    }

    /// Opens a span (scoped timer) nested under the innermost span open
    /// on this thread. On drop the guard emits a `span` event carrying
    /// the span's name, wall time, and parent linkage.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_under(name, current_span())
    }

    /// Opens a span with an explicit parent, for work that crosses a
    /// thread boundary (the parent id was captured on the submitting
    /// thread via [`current_span`]).
    pub fn span_under(&self, name: &str, parent: Option<u64>) -> SpanGuard {
        self.open_span("span", vec![("name".to_string(), Json::Str(name.to_string()))], parent)
    }

    /// Opens a span that records as a `work_unit` event — one unit of a
    /// traced [`crate::exec`] fan-out. `stage` names the fan-out site,
    /// `index` the unit within it.
    pub fn work_span(&self, stage: &str, index: usize, parent: Option<u64>) -> SpanGuard {
        self.open_span(
            "work_unit",
            vec![
                ("stage".to_string(), Json::Str(stage.to_string())),
                ("index".to_string(), Json::UInt(index as u64)),
            ],
            parent,
        )
    }

    fn open_span(
        &self,
        kind: &'static str,
        fields: Vec<(String, Json)>,
        parent: Option<u64>,
    ) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { sink: ObsSink::disabled(), kind, fields: Vec::new(), id: 0, parent: None, start: None };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        SpanGuard { sink: self.clone(), kind, fields, id, parent, start: Some(Instant::now()) }
    }

    /// Snapshot of the recorded events, in emission order.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => lock(&inner.events).clone(),
            None => Vec::new(),
        }
    }

    /// Number of events recorded so far.
    pub fn event_count(&self) -> usize {
        match &self.inner {
            Some(inner) => lock(&inner.events).len(),
            None => 0,
        }
    }

    /// Snapshot of the counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        match &self.inner {
            Some(inner) => lock(&inner.counters).clone(),
            None => BTreeMap::new(),
        }
    }

    /// Snapshot of the gauges.
    pub fn gauges(&self) -> BTreeMap<String, GaugeStat> {
        match &self.inner {
            Some(inner) => lock(&inner.gauges).clone(),
            None => BTreeMap::new(),
        }
    }

    /// Every event in canonical form ([`Event::canonical`]), sorted.
    ///
    /// Two runs of the same configuration must produce equal vectors
    /// regardless of `--jobs` — event *order* may differ under
    /// parallelism, content may not. The determinism test in
    /// `crates/experiments/tests/obs_manifest.rs` asserts exactly this.
    pub fn canonical_events(&self) -> Vec<String> {
        let mut lines: Vec<String> = self.events().iter().map(Event::canonical).collect();
        lines.sort_unstable();
        lines
    }

    /// The whole event stream as JSON Lines (one event per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.line());
            out.push('\n');
        }
        out
    }

    /// Writes the event stream as a JSONL file, creating parent
    /// directories as needed.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())?;
        f.flush()
    }
}

fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

/// RAII guard for an open span; emits the timing event on drop.
///
/// Returned by [`ObsSink::span`] and friends. Guards from a disabled
/// sink do nothing.
#[must_use = "a span measures the scope it is alive for"]
pub struct SpanGuard {
    sink: ObsSink,
    kind: &'static str,
    fields: Vec<(String, Json)>,
    id: u64,
    parent: Option<u64>,
    start: Option<Instant>,
}

impl SpanGuard {
    /// This span's id, for linking events emitted by nested work.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&self.id) {
                stack.pop();
            } else {
                // Out-of-order drop (spans moved across scopes); remove
                // wherever it is rather than corrupting the stack.
                stack.retain(|&x| x != self.id);
            }
        });
        let mut fields = std::mem::take(&mut self.fields);
        fields.push(("wall_ms".to_string(), Json::Num(start.elapsed().as_secs_f64() * 1e3)));
        fields.push(("span_id".to_string(), Json::UInt(self.id)));
        if let Some(p) = self.parent {
            fields.push(("parent_span".to_string(), Json::UInt(p)));
        }
        self.sink.emit_owned(self.kind, fields);
    }
}

/// Parses a JSONL string back into events (inverse of
/// [`ObsSink::to_jsonl`]). Blank lines are skipped; the error names the
/// offending line.
pub fn parse_jsonl(input: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line)
            .map_err(|e: JsonError| format!("line {}: {e}", lineno + 1))?;
        events.push(Event::from_json(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = ObsSink::disabled();
        sink.emit("round", &[("t", Json::Num(1.0))]);
        sink.add("rounds", 1);
        sink.observe("psi", 0.5);
        {
            let _outer = sink.span("outer");
            let _inner = sink.span("inner");
        }
        drop(sink.work_span("stage", 0, None));
        assert_eq!(sink.event_count(), 0);
        assert!(sink.events().is_empty());
        assert!(sink.counters().is_empty());
        assert!(sink.gauges().is_empty());
        assert!(!sink.enabled());
        // Scoping a disabled sink keeps it disabled.
        let scoped = sink.scoped("cell");
        scoped.emit("x", &[]);
        assert_eq!(scoped.event_count(), 0);
    }

    #[test]
    fn events_carry_ctx_and_timestamp() {
        let sink = ObsSink::recording();
        sink.emit("round", &[("t", Json::Num(30.0)), ("loss", Json::Num(0.25))]);
        sink.scoped("LbChat@w").scoped("eval").emit("trial", &[("index", Json::UInt(3))]);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "round");
        assert_eq!(events[0].get("ctx"), None);
        assert!(events[0].num("ts_ms").is_some());
        assert_eq!(events[1].str_field("ctx"), Some("LbChat@w/eval"));
        assert_eq!(events[1].get("index"), Some(&Json::UInt(3)));
    }

    #[test]
    fn clones_share_one_stream() {
        let sink = ObsSink::recording();
        let clone = sink.clone();
        let scoped = sink.scoped("a");
        clone.emit("x", &[]);
        scoped.emit("y", &[]);
        sink.add("n", 2);
        clone.add("n", 3);
        assert_eq!(sink.event_count(), 2);
        assert_eq!(sink.counters().get("n"), Some(&5));
    }

    #[test]
    fn gauges_summarize_commutatively() {
        let sink = ObsSink::recording();
        for v in [0.5, 0.1, 0.9] {
            sink.observe("psi", v);
        }
        let g = sink.gauges()["psi"];
        assert_eq!(g.n, 3);
        assert_eq!(g.min, 0.1);
        assert_eq!(g.max, 0.9);
        assert!((g.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spans_nest_and_link_parents() {
        let sink = ObsSink::recording();
        {
            let outer = sink.span("outer");
            let outer_id = outer.id();
            {
                let inner = sink.span("inner");
                assert_eq!(current_span(), Some(inner.id()));
            }
            assert_eq!(current_span(), Some(outer_id));
        }
        assert_eq!(current_span(), None);
        let events = sink.events();
        // Inner drops (and records) first.
        assert_eq!(events[0].str_field("name"), Some("inner"));
        assert_eq!(events[1].str_field("name"), Some("outer"));
        let outer_id = events[1].get("span_id").unwrap().as_u64().unwrap();
        assert_eq!(events[0].get("parent_span").unwrap().as_u64(), Some(outer_id));
        assert_eq!(events[1].get("parent_span"), None);
        assert!(events[0].num("wall_ms").is_some());
    }

    #[test]
    fn work_spans_record_stage_and_index() {
        let sink = ObsSink::recording();
        let parent = {
            let outer = sink.span("fanout");
            let parent = current_span();
            drop(sink.work_span("cell", 4, parent));
            drop(outer);
            parent.unwrap()
        };
        let e = &sink.events()[0];
        assert_eq!(e.kind, "work_unit");
        assert_eq!(e.str_field("stage"), Some("cell"));
        assert_eq!(e.get("index"), Some(&Json::UInt(4)));
        assert_eq!(e.get("parent_span").unwrap().as_u64(), Some(parent));
    }

    #[test]
    fn jsonl_round_trips() {
        let sink = ObsSink::recording();
        sink.emit(
            "transfer",
            &[
                ("i", Json::UInt(0)),
                ("j", Json::UInt(3)),
                ("bytes", Json::UInt(614_400)),
                ("delivered", Json::Bool(true)),
                ("airtime_s", Json::Num(0.1587)),
            ],
        );
        sink.scoped("cell").emit("note", &[("msg", Json::Str("quoted \"text\"\n".into()))]);
        let text = sink.to_jsonl();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, sink.events());
    }

    #[test]
    fn canonical_strips_timing_and_sorts() {
        let sink = ObsSink::recording();
        sink.emit("b_second", &[("v", Json::UInt(1))]);
        sink.emit("a_first", &[("v", Json::UInt(2))]);
        drop(sink.span("timed"));
        let canon = sink.canonical_events();
        assert_eq!(canon.len(), 3);
        assert!(canon.windows(2).all(|w| w[0] <= w[1]), "sorted");
        for line in &canon {
            for f in TIMING_FIELDS {
                assert!(!line.contains(&format!("\"{f}\"")), "{line} leaks {f}");
            }
        }
        // Same logical stream emitted in a different order canonicalizes
        // to the same vector.
        let other = ObsSink::recording();
        drop(other.span("timed"));
        other.emit("a_first", &[("v", Json::UInt(2))]);
        other.emit("b_second", &[("v", Json::UInt(1))]);
        assert_eq!(other.canonical_events(), canon);
    }

    #[test]
    fn parse_jsonl_reports_bad_lines() {
        assert!(parse_jsonl("{\"kind\":\"ok\"}\nnot json\n").is_err());
        assert!(parse_jsonl("{\"no_kind\":1}\n").is_err());
        assert!(parse_jsonl("[1,2]\n").is_err());
        assert_eq!(parse_jsonl("\n  \n").unwrap(), Vec::new());
    }
}
