//! A minimal JSON value, writer, and parser.
//!
//! The observability layer serializes events as JSON Lines and
//! `summarize_runs` reads them back; the workspace deliberately carries no
//! third-party dependencies, so this module implements the small JSON
//! subset the manifests need, with two properties the event pipeline
//! relies on:
//!
//! * **Exact integers.** Counters, byte totals, and 64-bit seeds are kept
//!   in a dedicated [`Json::UInt`] variant and printed in full decimal —
//!   they never pass through `f64`, so `derive_seed` outputs survive a
//!   write/parse cycle bit-exactly.
//! * **Round-trip stability.** Every value this module *writes* parses
//!   back to an equal value: floats are printed with Rust's
//!   shortest-round-trip formatting (with a forced `.0` so they stay
//!   floats), and object key order is preserved (objects are ordered
//!   pairs, not maps).
//!
//! Non-finite floats are not representable in JSON and serialize as
//! `null`.

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact (seeds and counters are `u64`).
    UInt(u64),
    /// Any other number (negative integers and all floats).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key–value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value as `f64` if numeric ([`Json::UInt`] widens).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(u) => Some(u as f64),
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object slice if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Serializes into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => {
                let mut buf = [0u8; 20];
                out.push_str(fmt_u64(*u, &mut buf));
            }
            Json::Num(n) => write_f64(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<f32> for Json {
    fn from(v: f32) -> Self {
        Json::Num(v as f64) // f32 → f64 widening is exact
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

/// Formats a `u64` into a stack buffer (avoids a heap alloc on the event
/// hot path).
fn fmt_u64(mut v: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("ascii digits")
}

/// Writes a float with shortest-round-trip formatting, forcing a `.0`
/// suffix on integral values so the value parses back as a float.
/// Non-finite values become `null` (JSON has no NaN/Infinity).
fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    use fmt::Write as _;
    let start = out.len();
    let _ = write!(out, "{v}");
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// Writes a string literal with the escapes JSON requires.
fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { pos: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    s.push(self.escape()?);
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                // Combine UTF-16 surrogate pairs.
                if (0xD800..0xDC00).contains(&hi) {
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect_byte(b'u')?;
                        let lo = self.hex4()?;
                        let cp =
                            0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF);
                        char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"))?
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // audit:allow(P005): the scan loop above only advances past ASCII digit/sign/dot bytes, so the slice is valid UTF-8
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float && !text.starts_with('-') {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { pos: start, msg: format!("bad number {text:?}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let s = v.to_string();
        let back = parse(&s).unwrap_or_else(|e| panic!("reparse {s:?}: {e}"));
        assert_eq!(&back, v, "round trip through {s:?}");
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::UInt(0),
            Json::UInt(u64::MAX),
            Json::Num(-5.0),
            Json::Num(3.5),
            Json::Num(1e-12),
            Json::Num(6.02e23),
            Json::Str(String::new()),
            Json::Str("plain".into()),
            Json::Str("esc \" \\ \n \t \r \u{1} ünïcode 🚗".into()),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn u64_stays_exact() {
        // 2^63 + 1 is not representable in f64; the UInt variant must
        // carry it through a write/parse cycle unchanged.
        let v = Json::UInt((1 << 63) + 1);
        assert_eq!(v.to_string(), "9223372036854775809");
        roundtrip(&v);
    }

    #[test]
    fn integral_floats_keep_their_type() {
        assert_eq!(Json::Num(2.0).to_string(), "2.0");
        roundtrip(&Json::Num(2.0));
        assert_eq!(parse("2").unwrap(), Json::UInt(2));
        assert_eq!(parse("2.0").unwrap(), Json::Num(2.0));
        assert_eq!(parse("-2").unwrap(), Json::Num(-2.0));
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn containers_round_trip() {
        let v = Json::Obj(vec![
            ("kind".into(), Json::Str("transfer".into())),
            ("bytes".into(), Json::UInt(614_400)),
            ("delivered".into(), Json::Bool(true)),
            ("airtime_s".into(), Json::Num(0.1587)),
            ("tags".into(), Json::Arr(vec![Json::Null, Json::UInt(1), Json::Str("x".into())])),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
        ]);
        roundtrip(&v);
        assert_eq!(v.get("bytes"), Some(&Json::UInt(614_400)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn object_key_order_is_preserved() {
        let s = r#"{"z":1,"a":2}"#;
        let v = parse(s).unwrap();
        assert_eq!(v.to_string(), s);
    }

    #[test]
    fn parser_accepts_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , \"\\u00e9\\n\" ] } ").unwrap();
        assert_eq!(
            v,
            Json::Obj(vec![(
                "a".into(),
                Json::Arr(vec![Json::UInt(1), Json::Num(2.5), Json::Str("é\n".into())])
            )])
        );
        assert_eq!(parse(r#""\ud83d\ude97""#).unwrap(), Json::Str("🚗".into()));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1 2", "\"unterminated",
            "{\"a\":1,}", "[1,]", "\"\\q\"", "nul", "--1", "'single'",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must fail to parse");
        }
    }
}
