//! Deterministic parallel execution.
//!
//! The benchmark stack is embarrassingly parallel at several levels —
//! (method, condition) table cells, closed-loop driving trials, per-vehicle
//! BEV observations — but reproducibility is non-negotiable: the same seed
//! must produce byte-identical tables regardless of how many workers run.
//! This module provides the two pieces that make that combination work,
//! with no dependencies beyond `std`:
//!
//! * [`par_run`] / [`par_map`] — a scoped worker pool (`std::thread::scope`)
//!   that fans a work list across up to [`jobs`] threads and returns results
//!   **in input order**. Callers must make each work item self-contained
//!   (no RNG shared across items); under that contract the output is
//!   bit-identical for any job count, including 1.
//! * [`derive_seed`] — a stable, platform-independent seed-derivation
//!   function: a `(base seed, stream tag, index)` triple maps to one `u64`.
//!   Units of parallel work seed their own `StdRng` from it, so splitting
//!   a serial RNG stream never enters the picture.
//!
//! The worker count resolves, in order: an explicit [`set_jobs`] override
//! (the `--jobs` CLI flag), the `LBCHAT_JOBS` environment variable, and
//! finally [`std::thread::available_parallelism`].
//!
//! [`par_run_traced`] / [`par_map_traced`] are the same fan-outs with one
//! `work_unit` timing event per item recorded into an
//! [`ObsSink`](crate::obs::ObsSink) — span parentage is captured on the
//! submitting thread, so nesting stays correct across the pool. With a
//! disabled sink they are exactly [`par_run`] / [`par_map`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide jobs override; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Environment variable consulted by [`jobs`] when no override is set.
pub const JOBS_ENV: &str = "LBCHAT_JOBS";

/// Overrides the worker count used by [`par_run`]/[`par_map`] (the
/// `--jobs` flag). A value of 0 clears the override, falling back to
/// `LBCHAT_JOBS` / hardware detection.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count: [`set_jobs`] override, else the `LBCHAT_JOBS`
/// environment variable, else [`std::thread::available_parallelism`].
/// Always at least 1.
pub fn jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f(0..n)` across up to [`jobs`] worker threads and returns the
/// results in index order.
///
/// Work items are claimed from a shared atomic counter (work stealing), so
/// uneven item costs balance automatically; because results are re-sorted
/// by index, scheduling order never affects the output. With one worker
/// (or one item) the work runs inline on the calling thread.
///
/// # Panics
/// Re-raises a panic from any work item on the calling thread.
// audit:phase(intent)
pub fn par_run<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = jobs().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let shards: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    let mut keyed: Vec<(usize, R)> = shards.into_iter().flatten().collect();
    keyed.sort_by_key(|&(i, _)| i);
    keyed.into_iter().map(|(_, r)| r).collect()
}

/// Maps `f` over `items` in parallel, preserving order. `f` receives the
/// item index alongside the item so callers can derive per-item seeds with
/// [`derive_seed`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_run(items.len(), |i| f(i, &items[i]))
}

/// [`par_run`] with per-work-unit observability: when `sink` is
/// recording, each work item runs inside a `work_unit` span (see
/// [`crate::obs`]) tagged with `stage` and the item index, parented to
/// whatever span was open on the *calling* thread — so span nesting
/// survives the pool boundary. With a disabled sink this is exactly
/// [`par_run`].
///
/// The emitted `work_unit` events carry only timing plus the
/// deterministic `(stage, index)` pair, so traced runs remain comparable
/// across `--jobs` settings.
pub fn par_run_traced<R, F>(sink: &crate::obs::ObsSink, stage: &str, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if !sink.enabled() {
        return par_run(n, f);
    }
    let parent = crate::obs::current_span();
    par_run(n, |i| {
        let _unit = sink.work_span(stage, i, parent);
        f(i)
    })
}

/// [`par_map`] with per-work-unit observability; see [`par_run_traced`].
pub fn par_map_traced<T, R, F>(
    sink: &crate::obs::ObsSink,
    stage: &str,
    items: &[T],
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_run_traced(sink, stage, items.len(), |i| f(i, &items[i]))
}

/// Runs `f(index, &mut item)` over every item, splitting the slice into one
/// contiguous chunk per worker. Unlike [`par_map`] there is no result
/// collection and no work stealing: each worker owns a fixed range, which is
/// what in-place mutation needs.
///
/// Used by batched local training to process fixed-size gradient shards in
/// parallel: because each shard's content depends only on its index (never
/// on scheduling), any worker count — including the inline 1-worker path —
/// produces bit-identical shard states.
///
/// # Panics
/// Re-raises a panic from any work item on the calling thread.
// audit:phase(intent)
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let workers = jobs().min(n);
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(c, slab)| {
                scope.spawn(move || {
                    for (off, item) in slab.iter_mut().enumerate() {
                        f(c * chunk + off, item);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        }
    });
}

/// The splitmix64 finalizer — a full-avalanche 64-bit mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a stable per-unit RNG seed from a base seed, a stream tag, and
/// an index.
///
/// The tag separates independent randomness streams that share a base seed
/// (e.g. `"trial-world"` vs `"trial-route"`); the index separates units
/// within a stream (trial 0, trial 1, …). The mapping is a pure function of
/// its inputs — same triple, same seed, on any platform, forever — which is
/// what makes parallel execution reproducible: every unit of work seeds its
/// own `StdRng` instead of consuming a shared serial stream.
pub fn derive_seed(base: u64, stream: &str, index: u64) -> u64 {
    // FNV-1a over the tag bytes, then splitmix64 rounds folding in the base
    // and index so that close-together bases/indices land far apart.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in stream.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix(mix(base ^ h).wrapping_add(mix(index)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_run_matches_serial_map() {
        let serial: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(par_run(100, |i| i * i), serial);
    }

    #[test]
    fn par_run_handles_edge_sizes() {
        assert_eq!(par_run(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_map_preserves_order_under_uneven_load() {
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |idx, &v| {
            // Make early items slow so late items finish first.
            if idx < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            v * 3
        });
        assert_eq!(out, items.iter().map(|v| v * 3).collect::<Vec<_>>());
    }

    #[test]
    fn derive_seed_is_stable_across_calls() {
        let a = derive_seed(42, "trial", 7);
        let b = derive_seed(42, "trial", 7);
        assert_eq!(a, b);
        // Pin one value so accidental algorithm changes (which would break
        // recorded results) fail loudly.
        assert_eq!(derive_seed(0, "", 0), 0x5905_c3be_d5e4_a7a7);
    }

    #[test]
    fn derive_seed_separates_cells() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for stream in ["trial-world", "trial-route", "cell", ""] {
                for index in 0..64u64 {
                    assert!(
                        seen.insert(derive_seed(base, stream, index)),
                        "collision at ({base}, {stream:?}, {index})"
                    );
                }
            }
        }
    }

    #[test]
    fn derive_seed_distinguishes_tag_and_index() {
        assert_ne!(derive_seed(1, "a", 0), derive_seed(1, "b", 0));
        assert_ne!(derive_seed(1, "a", 0), derive_seed(1, "a", 1));
        assert_ne!(derive_seed(1, "a", 0), derive_seed(2, "a", 0));
    }

    #[test]
    fn jobs_is_positive() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn par_for_each_mut_visits_every_item_once() {
        let mut items: Vec<u64> = vec![0; 57];
        par_for_each_mut(&mut items, |i, v| *v = (i as u64) * 3 + 1);
        let expect: Vec<u64> = (0..57).map(|i| i * 3 + 1).collect();
        assert_eq!(items, expect);
        // Edge sizes run inline.
        let mut empty: Vec<u64> = Vec::new();
        par_for_each_mut(&mut empty, |_, _| unreachable!("no items"));
        let mut one = [9u64];
        par_for_each_mut(&mut one, |i, v| *v += i as u64 + 1);
        assert_eq!(one, [10]);
    }

    #[test]
    fn traced_fanout_records_one_work_unit_per_item() {
        let sink = crate::obs::ObsSink::recording();
        let out = {
            let _outer = sink.span("fanout");
            par_run_traced(&sink, "unit-test", 8, |i| i * 2)
        };
        assert_eq!(out, (0..8).map(|i| i * 2).collect::<Vec<_>>());
        let events = sink.events();
        let units: Vec<_> = events.iter().filter(|e| e.kind == "work_unit").collect();
        assert_eq!(units.len(), 8);
        let mut indices: Vec<u64> =
            units.iter().filter_map(|e| e.get("index")?.as_u64()).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..8).collect::<Vec<u64>>());
        let outer = events.iter().find(|e| e.kind == "span").unwrap();
        let outer_id = outer.get("span_id").unwrap().as_u64();
        for u in &units {
            assert_eq!(u.str_field("stage"), Some("unit-test"));
            assert_eq!(u.get("parent_span").unwrap().as_u64(), outer_id);
        }
        // A disabled sink records nothing and changes nothing.
        let quiet = crate::obs::ObsSink::disabled();
        assert_eq!(par_run_traced(&quiet, "x", 3, |i| i), vec![0, 1, 2]);
        assert_eq!(quiet.event_count(), 0);
    }
}
