//! The one-line import for code driving the collaborative runtime:
//!
//! ```
//! use lbchat::prelude::*;
//! ```
//!
//! Re-exports the names every algorithm implementation and experiment
//! driver touches — the [`CollabAlgorithm`] trait with its [`Runtime`] and
//! contexts, the [`Learner`] task abstraction, and the [`Metrics`] sink —
//! plus the config/builder types needed to construct a run. Narrower
//! imports stay available through the individual modules.

pub use crate::compress::{Codec, Compressor, ErrorFeedback, WireModel};
pub use crate::config::{ConfigError, LbChatConfig};
pub use crate::learner::{Learner, TrainStats};
pub use crate::metrics::Metrics;
pub use crate::obs::ObsSink;
pub use crate::runtime::{
    CollabAlgorithm, FrameCtx, LinkCtx, Runtime, RuntimeConfig, RuntimeConfigBuilder,
    RuntimeError, SessionCtx, SessionStep,
};
pub use simnet::channel::{MediumConfig, TransferLoss, TransferOutcome, TransferSpec};
