//! Coreset construction by layered sampling (paper §III-B, Algorithm 1) and
//! merge-and-reduce maintenance (§III-D).
//!
//! A coreset is a small weighted subset `C` of a dataset `D` whose weighted
//! loss approximates the full dataset's loss for every model in a bounded
//! region of parameter space (Def. II.2, the ε-coreset of a
//! continuous-and-bounded learning problem). Construction partitions `D`
//! into concentric *layers* by per-sample loss distance from the best-loss
//! "center" sample, then draws a weighted random sample from each layer —
//! yielding a data-independent size, unlike sensitivity-based methods.

use crate::dataset::WeightedDataset;
use crate::learner::Learner;
use rand::{Rng, RngExt};

/// A weighted coreset: samples with their coreset weights `w_C(d)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Coreset<S> {
    samples: Vec<S>,
    weights: Vec<f32>,
}

impl<S: Clone> Coreset<S> {
    /// Wraps samples with explicit coreset weights.
    ///
    /// # Panics
    /// Panics if lengths differ or any weight is non-positive / non-finite.
    pub fn new(samples: Vec<S>, weights: Vec<f32>) -> Self {
        assert_eq!(samples.len(), weights.len(), "sample/weight length mismatch");
        assert!(
            weights.iter().all(|w| *w > 0.0 && w.is_finite()),
            "coreset weights must be positive and finite"
        );
        Self { samples, weights }
    }

    /// An empty coreset.
    pub fn empty() -> Self {
        Self { samples: Vec::new(), weights: Vec::new() }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the coreset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples.
    pub fn samples(&self) -> &[S] {
        &self.samples
    }

    /// The coreset weights `w_C(d)`.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Total weight (should approximate the total weight of the source
    /// dataset — the estimator property layered sampling preserves).
    pub fn total_weight(&self) -> f32 {
        self.weights.iter().sum()
    }

    /// Borrowed `(sample, weight)` pairs.
    pub fn pairs(&self) -> Vec<(&S, f32)> {
        self.samples.iter().zip(self.weights.iter().copied()).collect()
    }

    /// Merges two coresets by union (§III-D): if `C_1`, `C_2` are ε-coresets
    /// of disjoint `D_1`, `D_2`, the union is an ε-coreset of `D_1 ∪ D_2`.
    pub fn merge(mut self, other: Coreset<S>) -> Coreset<S> {
        self.samples.extend(other.samples);
        self.weights.extend(other.weights);
        self
    }

    /// Serialized size in bytes on the simulated radio, assuming
    /// `bytes_per_sample` per sample (feature vector + target + weight).
    pub fn wire_bytes(&self, bytes_per_sample: usize) -> usize {
        self.len() * bytes_per_sample
    }
}

/// Parameters of Algorithm 1.
#[derive(Debug, Clone)]
pub struct CoresetConfig {
    /// Target coreset size |C| (paper default: 150 frames ≈ 0.6 MB).
    pub size: usize,
}

impl Default for CoresetConfig {
    fn default() -> Self {
        Self { size: 150 }
    }
}

/// Reusable scratch buffers for [`construct_with_scratch`].
///
/// Construction at size 150 from a 10k-frame dataset allocates a loss
/// vector, per-layer index vectors, and a key vector per layer on every
/// call; nodes rebuild their coreset after every chat, so that churn is a
/// measured hot path (`coreset/*` in the bench suite). A scratch carried
/// across calls removes every per-call allocation. The buffers hold no
/// state between calls — reusing one scratch across datasets and learners
/// is always correct, and results are bit-identical to a fresh scratch.
#[derive(Debug, Default, Clone)]
pub struct CoresetScratch {
    losses: Vec<f32>,
    layer_of: Vec<u32>,
    layer_start: Vec<usize>,
    layer_fill: Vec<usize>,
    layer_weights: Vec<f32>,
    order: Vec<usize>,
    keyed: Vec<(f32, usize)>,
}

impl CoresetScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The Efraimidis–Spirakis reservoir key `u^(1/w)`.
///
/// Uniform weights (`WeightedDataset::uniform`, the common case) take the
/// exponent-one fast path: IEEE `powf(u, 1.0)` is exactly `u`, so skipping
/// the call changes nothing but the cost (`powf_at_one_is_exact` verifies
/// the identity on this platform).
#[inline]
fn sampling_key<R: Rng + ?Sized>(rng: &mut R, weight: f32) -> f32 {
    let u: f32 = rng.random::<f32>().max(f32::MIN_POSITIVE);
    if weight == 1.0 {
        u
    } else {
        u.powf(1.0 / weight)
    }
}

/// The selection order of layered sampling: key descending, index ascending
/// on ties — exactly the order the reference implementation's stable
/// descending sort produces, made total so partial selection can't diverge
/// from it.
#[inline]
fn key_order(a: &(f32, usize), b: &(f32, usize)) -> std::cmp::Ordering {
    b.0.partial_cmp(&a.0).expect("keys are finite").then(a.1.cmp(&b.1))
}

/// Keeps the `quota` best entries of `keyed` under [`key_order`], sorted,
/// without fully sorting the rest (O(m + q log q) instead of O(m log m)).
fn select_best(keyed: &mut Vec<(f32, usize)>, quota: usize) {
    if quota < keyed.len() {
        keyed.select_nth_unstable_by(quota - 1, key_order);
        keyed.truncate(quota);
    }
    keyed.sort_unstable_by(key_order);
}

/// Builds an ε-coreset of `dataset` by layered sampling (Algorithm 1).
///
/// 1. The *center* is the sample with the smallest loss under the current
///    model; the 0-th layer radius is `R = f(x; D) / |D|`.
/// 2. Each sample joins layer `⌊log2(dist_d / R)⌋` where
///    `dist_d = f(x; d) − f(x; d̃)` (samples within `R` of the center join
///    layer 0). At most `log(|D| + 1)` layers are kept; outliers beyond the
///    last layer join it.
/// 3. Each layer contributes a `w(d)`-weighted random sample (Efraimidis–
///    Spirakis reservoir keys), sized proportionally to the layer's total
///    weight; every picked sample receives the layer-preserving weight
///    `w_C(d) = Σ_{D̂_j} w(d') / Σ_{Ĉ_j} w(d')`.
///
/// Returns an empty coreset for an empty dataset; datasets not larger than
/// `config.size` are copied wholesale (already their own best coreset).
///
/// Output is bit-identical to [`reference::construct`]; callers on a hot
/// loop should prefer [`construct_with_scratch`], which additionally reuses
/// buffers across calls.
pub fn construct<L, R>(
    learner: &L,
    dataset: &WeightedDataset<L::Sample>,
    config: &CoresetConfig,
    rng: &mut R,
) -> Coreset<L::Sample>
where
    L: Learner,
    R: Rng + ?Sized,
{
    construct_with_scratch(learner, dataset, config, rng, &mut CoresetScratch::new())
}

/// [`construct`] with caller-owned scratch buffers; see [`CoresetScratch`].
pub fn construct_with_scratch<L, R>(
    learner: &L,
    dataset: &WeightedDataset<L::Sample>,
    config: &CoresetConfig,
    rng: &mut R,
    scratch: &mut CoresetScratch,
) -> Coreset<L::Sample>
where
    L: Learner,
    R: Rng + ?Sized,
{
    let n = dataset.len();
    if n == 0 {
        return Coreset::empty();
    }
    if n <= config.size {
        return Coreset::new(dataset.samples().to_vec(), dataset.weights().to_vec());
    }

    // Per-sample losses under the current model.
    scratch.losses.clear();
    scratch.losses.extend(dataset.samples().iter().map(|s| learner.loss(s)));
    let losses = &scratch.losses;
    let center = losses.iter().copied().fold(f32::INFINITY, f32::min);
    let weighted_total: f32 = losses
        .iter()
        .zip(dataset.weights())
        .map(|(l, w)| l * w)
        .sum();
    let radius = (weighted_total / n as f32).max(1e-12);

    // Assign layers: a counting sort into one index buffer replaces the
    // reference's per-layer Vec pushes. `order` holds the dataset indices
    // grouped by layer, ascending within each layer (the same visit order
    // as the reference, so the RNG stream lines up draw for draw).
    let max_layer = ((n + 1) as f32).log2().ceil() as usize;
    let n_layers = max_layer + 1;
    scratch.layer_of.clear();
    scratch.layer_start.clear();
    scratch.layer_start.resize(n_layers + 1, 0);
    for &l in losses {
        let dist = (l - center).max(0.0);
        let layer = if dist <= radius {
            0
        } else {
            (((dist / radius).log2().floor() as isize).max(0) as usize).min(max_layer)
        };
        scratch.layer_of.push(layer as u32);
        scratch.layer_start[layer + 1] += 1;
    }
    for l in 0..n_layers {
        scratch.layer_start[l + 1] += scratch.layer_start[l];
    }
    scratch.layer_fill.clear();
    scratch.layer_fill.extend_from_slice(&scratch.layer_start[..n_layers]);
    scratch.order.resize(n, 0);
    for (i, &layer) in scratch.layer_of.iter().enumerate() {
        let slot = &mut scratch.layer_fill[layer as usize];
        scratch.order[*slot] = i;
        *slot += 1;
    }

    // Allocate the sampling budget across non-empty layers proportionally to
    // layer total weight, at least one sample per non-empty layer.
    scratch.layer_weights.clear();
    let mut nonempty = 0usize;
    for l in 0..n_layers {
        let idx = &scratch.order[scratch.layer_start[l]..scratch.layer_start[l + 1]];
        nonempty += usize::from(!idx.is_empty());
        scratch
            .layer_weights
            .push(idx.iter().map(|&i| dataset.weight(i)).sum::<f32>());
    }
    let total_weight: f32 = scratch.layer_weights.iter().sum();
    let budget = config.size.max(nonempty);

    let mut samples = Vec::with_capacity(budget);
    let mut weights = Vec::with_capacity(budget);
    for layer_idx in 0..n_layers {
        let layer = &scratch.order[scratch.layer_start[layer_idx]..scratch.layer_start[layer_idx + 1]];
        if layer.is_empty() {
            continue;
        }
        let share = scratch.layer_weights[layer_idx] / total_weight;
        let quota = ((budget as f32 * share).round() as usize).clamp(1, layer.len());
        // Weighted sampling without replacement: Efraimidis–Spirakis keys
        // u^(1/w) — take the `quota` largest.
        scratch.keyed.clear();
        scratch
            .keyed
            .extend(layer.iter().map(|&i| (sampling_key(rng, dataset.weight(i)), i)));
        select_best(&mut scratch.keyed, quota);
        let picked_weight: f32 = scratch.keyed.iter().map(|&(_, i)| dataset.weight(i)).sum();
        // w_C(d) = (layer total weight) / (picked total weight), scaled by
        // the sample's own original weight so non-uniform weights survive.
        let scale = scratch.layer_weights[layer_idx] / picked_weight;
        for &(_, i) in &scratch.keyed {
            samples.push(dataset.sample(i).clone());
            weights.push(dataset.weight(i) * scale);
        }
    }
    Coreset::new(samples, weights)
}

/// Reduces a (typically merged) coreset back to `size` samples while
/// preserving its total weight — the 'reduce' half of merge-and-reduce
/// (§III-D, after Har-Peled & Mazumdar). Sampling is `w_C`-weighted without
/// replacement; survivors are rescaled so `Σ w_C` is unchanged.
///
/// Output is bit-identical to [`reference::reduce`].
pub fn reduce<S: Clone, R: Rng + ?Sized>(
    coreset: Coreset<S>,
    size: usize,
    rng: &mut R,
) -> Coreset<S> {
    if coreset.len() <= size || size == 0 {
        return coreset;
    }
    let total = coreset.total_weight();
    let mut keyed: Vec<(f32, usize)> = (0..coreset.len())
        .map(|i| (sampling_key(rng, coreset.weights()[i]), i))
        .collect();
    select_best(&mut keyed, size);
    let picked: f32 = keyed.iter().map(|&(_, i)| coreset.weights()[i]).sum();
    let scale = total / picked;
    let samples = keyed.iter().map(|&(_, i)| coreset.samples()[i].clone()).collect();
    let weights = keyed.iter().map(|&(_, i)| coreset.weights()[i] * scale).collect();
    Coreset::new(samples, weights)
}

/// The pre-optimization implementations, kept verbatim as the golden
/// baseline: the optimized [`construct`] and [`reduce`] must match them
/// bit for bit (`tests/coreset_properties.rs` proves it on random inputs,
/// `tests/golden.rs` on pinned fixtures), and `lbchat-bench --reference`
/// times them to quantify the speedup.
pub mod reference {
    use super::{Coreset, CoresetConfig};
    use crate::dataset::WeightedDataset;
    use crate::learner::Learner;
    use rand::{Rng, RngExt};

    /// Algorithm 1 exactly as first implemented: per-layer index vectors,
    /// full-sort selection, `powf` keys unconditionally.
    pub fn construct<L, R>(
        learner: &L,
        dataset: &WeightedDataset<L::Sample>,
        config: &CoresetConfig,
        rng: &mut R,
    ) -> Coreset<L::Sample>
    where
        L: Learner,
        R: Rng + ?Sized,
    {
        let n = dataset.len();
        if n == 0 {
            return Coreset::empty();
        }
        if n <= config.size {
            return Coreset::new(dataset.samples().to_vec(), dataset.weights().to_vec());
        }

        let losses: Vec<f32> = dataset.samples().iter().map(|s| learner.loss(s)).collect();
        let center = losses.iter().copied().fold(f32::INFINITY, f32::min);
        let weighted_total: f32 = losses
            .iter()
            .zip(dataset.weights())
            .map(|(l, w)| l * w)
            .sum();
        let radius = (weighted_total / n as f32).max(1e-12);

        let max_layer = ((n + 1) as f32).log2().ceil() as usize;
        let mut layers: Vec<Vec<usize>> = vec![Vec::new(); max_layer + 1];
        for (i, &l) in losses.iter().enumerate() {
            let dist = (l - center).max(0.0);
            let layer = if dist <= radius {
                0
            } else {
                (((dist / radius).log2().floor() as isize).max(0) as usize).min(max_layer)
            };
            layers[layer].push(i);
        }

        let layer_weights: Vec<f32> = layers
            .iter()
            .map(|idx| idx.iter().map(|&i| dataset.weight(i)).sum::<f32>())
            .collect();
        let total_weight: f32 = layer_weights.iter().sum();
        let nonempty = layers.iter().filter(|l| !l.is_empty()).count();
        let budget = config.size.max(nonempty);

        let mut samples = Vec::with_capacity(budget);
        let mut weights = Vec::with_capacity(budget);
        for (layer_idx, layer) in layers.iter().enumerate() {
            if layer.is_empty() {
                continue;
            }
            let share = layer_weights[layer_idx] / total_weight;
            let quota = ((budget as f32 * share).round() as usize)
                .clamp(1, layer.len());
            let mut keyed: Vec<(f32, usize)> = layer
                .iter()
                .map(|&i| {
                    let u: f32 = rng.random::<f32>().max(f32::MIN_POSITIVE);
                    (u.powf(1.0 / dataset.weight(i)), i)
                })
                .collect();
            keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("keys are finite"));
            keyed.truncate(quota);
            let picked_weight: f32 = keyed.iter().map(|&(_, i)| dataset.weight(i)).sum();
            let scale = layer_weights[layer_idx] / picked_weight;
            for &(_, i) in &keyed {
                samples.push(dataset.sample(i).clone());
                weights.push(dataset.weight(i) * scale);
            }
        }
        Coreset::new(samples, weights)
    }

    /// Merge-and-reduce's reduce half exactly as first implemented.
    pub fn reduce<S: Clone, R: Rng + ?Sized>(
        coreset: Coreset<S>,
        size: usize,
        rng: &mut R,
    ) -> Coreset<S> {
        if coreset.len() <= size || size == 0 {
            return coreset;
        }
        let total = coreset.total_weight();
        let mut keyed: Vec<(f32, usize)> = (0..coreset.len())
            .map(|i| {
                let u: f32 = rng.random::<f32>().max(f32::MIN_POSITIVE);
                (u.powf(1.0 / coreset.weights()[i]), i)
            })
            .collect();
        keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("keys are finite"));
        keyed.truncate(size);
        let picked: f32 = keyed.iter().map(|&(_, i)| coreset.weights()[i]).sum();
        let scale = total / picked;
        let samples = keyed.iter().map(|&(_, i)| coreset.samples()[i].clone()).collect();
        let weights = keyed.iter().map(|&(_, i)| coreset.weights()[i] * scale).collect();
        Coreset::new(samples, weights)
    }
}

/// Empirical ε of a coreset w.r.t. its source dataset under the current
/// model: `|f(x;C) − f(x;D)| / f(x;D)` with mean-normalized losses
/// (Def. II.2's relative error). Returns 0 when the dataset loss is 0.
pub fn empirical_epsilon<L: Learner>(
    learner: &L,
    coreset: &Coreset<L::Sample>,
    dataset: &WeightedDataset<L::Sample>,
) -> f32 {
    let f_d: f32 = dataset
        .pairs()
        .iter()
        .map(|(s, w)| w * learner.loss(s))
        .sum();
    let f_c: f32 = coreset
        .pairs()
        .iter()
        .map(|(s, w)| w * learner.loss(s))
        .sum();
    if f_d.abs() < 1e-12 {
        0.0
    } else {
        (f_c - f_d).abs() / f_d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learner::testutil::{line_data, LineLearner, Pt};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    fn noisy_dataset(n: usize) -> WeightedDataset<Pt> {
        // Targets from y = x with varying distances from the model y = x:
        // sample i gets offset i/n, producing a spread of losses.
        let samples: Vec<Pt> = (0..n)
            .map(|i| {
                let x = (i as f32 / n as f32) * 4.0 - 2.0;
                let off = (i % 17) as f32 / 17.0;
                Pt { x, y: x + off, group: i % 4 }
            })
            .collect();
        WeightedDataset::uniform(samples)
    }

    #[test]
    fn small_dataset_returned_wholesale() {
        let l = LineLearner::new(1.0, 0.0);
        let d = WeightedDataset::uniform(line_data(1.0, 0.0, 10));
        let c = construct(&l, &d, &CoresetConfig { size: 150 }, &mut rng());
        assert_eq!(c.len(), 10);
        assert_eq!(c.weights(), d.weights());
    }

    #[test]
    fn empty_dataset_gives_empty_coreset() {
        let l = LineLearner::new(1.0, 0.0);
        let d: WeightedDataset<Pt> = WeightedDataset::empty();
        let c = construct(&l, &d, &CoresetConfig::default(), &mut rng());
        assert!(c.is_empty());
    }

    #[test]
    fn coreset_hits_target_size_approximately() {
        let l = LineLearner::new(1.0, 0.0);
        let d = noisy_dataset(2000);
        let c = construct(&l, &d, &CoresetConfig { size: 150 }, &mut rng());
        assert!(
            (100..=220).contains(&c.len()),
            "size {} should be near the 150 target",
            c.len()
        );
    }

    #[test]
    fn coreset_preserves_total_weight() {
        let l = LineLearner::new(1.0, 0.0);
        let d = noisy_dataset(1000);
        let c = construct(&l, &d, &CoresetConfig { size: 100 }, &mut rng());
        let rel = (c.total_weight() - d.total_weight()).abs() / d.total_weight();
        assert!(rel < 0.05, "total weight off by {rel}");
    }

    #[test]
    fn coreset_loss_approximates_dataset_loss() {
        let l = LineLearner::new(1.0, 0.0);
        let d = noisy_dataset(3000);
        let c = construct(&l, &d, &CoresetConfig { size: 200 }, &mut rng());
        let eps = empirical_epsilon(&l, &c, &d);
        assert!(eps < 0.15, "empirical epsilon {eps} too large");
    }

    #[test]
    fn approximation_holds_for_nearby_models() {
        // The ε-coreset definition quantifies over a ball of models, not
        // just the construction model. Check a perturbed model.
        let l = LineLearner::new(1.0, 0.0);
        let d = noisy_dataset(3000);
        let c = construct(&l, &d, &CoresetConfig { size: 250 }, &mut rng());
        let mut nearby = LineLearner::new(1.15, 0.1);
        nearby.groups = 4;
        let eps = empirical_epsilon(&nearby, &c, &d);
        assert!(eps < 0.25, "epsilon {eps} under a nearby model");
    }

    #[test]
    fn merge_concatenates() {
        let a = Coreset::new(vec![1, 2], vec![1.0, 2.0]);
        let b = Coreset::new(vec![3], vec![3.0]);
        let m = a.merge(b);
        assert_eq!(m.len(), 3);
        assert_eq!(m.total_weight(), 6.0);
    }

    #[test]
    fn reduce_preserves_total_weight_and_size() {
        let c = Coreset::new((0..300).collect(), vec![1.0; 300]);
        let total = c.total_weight();
        let r = reduce(c, 100, &mut rng());
        assert_eq!(r.len(), 100);
        assert!((r.total_weight() - total).abs() / total < 1e-4);
    }

    #[test]
    fn reduce_noop_when_already_small() {
        let c = Coreset::new(vec![1, 2, 3], vec![1.0; 3]);
        let r = reduce(c.clone(), 10, &mut rng());
        assert_eq!(r, c);
    }

    #[test]
    fn weighted_sampling_prefers_heavy_samples() {
        // One sample carries most of the weight; it should almost always be
        // selected across repeated constructions.
        let l = LineLearner::new(1.0, 0.0);
        let mut samples = line_data(1.0, 0.5, 400);
        samples[7].y += 0.01; // make it distinguishable
        let mut weights = vec![1.0f32; 400];
        weights[7] = 500.0;
        let d = WeightedDataset::new(samples.clone(), weights);
        let mut hits = 0;
        let mut r = rng();
        for _ in 0..20 {
            let c = construct(&l, &d, &CoresetConfig { size: 40 }, &mut r);
            if c.samples().iter().any(|s| (s.y - samples[7].y).abs() < 1e-9) {
                hits += 1;
            }
        }
        assert!(hits >= 18, "heavy sample selected only {hits}/20 times");
    }

    #[test]
    fn construction_is_deterministic_given_seed() {
        let l = LineLearner::new(1.0, 0.0);
        let d = noisy_dataset(500);
        let c1 = construct(&l, &d, &CoresetConfig { size: 50 }, &mut rng());
        let c2 = construct(&l, &d, &CoresetConfig { size: 50 }, &mut rng());
        assert_eq!(c1, c2);
    }

    #[test]
    fn powf_at_one_is_exact() {
        // The uniform-weight fast path in `sampling_key` relies on
        // powf(u, 1.0) == u bit for bit; verify the identity holds on this
        // platform's libm for the full range the keys occupy.
        let mut r = rng();
        for _ in 0..10_000 {
            let u: f32 = rand::RngExt::random::<f32>(&mut r).max(f32::MIN_POSITIVE);
            assert_eq!(u.powf(1.0).to_bits(), u.to_bits(), "powf(u, 1.0) != u for u={u}");
        }
    }

    #[test]
    fn optimized_construct_matches_reference_bit_for_bit() {
        let l = LineLearner::new(1.0, 0.0);
        for (n, size) in [(500, 50), (2000, 150), (3000, 10)] {
            let d = noisy_dataset(n);
            let cfg = CoresetConfig { size };
            let fast = construct(&l, &d, &cfg, &mut rng());
            let slow = reference::construct(&l, &d, &cfg, &mut rng());
            assert_eq!(fast, slow, "n={n} size={size}");
        }
    }

    #[test]
    fn optimized_construct_matches_reference_with_nonuniform_weights() {
        let l = LineLearner::new(1.0, 0.0);
        let samples: Vec<Pt> = noisy_dataset(800).samples().to_vec();
        let weights: Vec<f32> = (0..800).map(|i| 0.5 + (i % 23) as f32 * 0.37).collect();
        let d = WeightedDataset::new(samples, weights);
        let cfg = CoresetConfig { size: 60 };
        let fast = construct(&l, &d, &cfg, &mut rng());
        let slow = reference::construct(&l, &d, &cfg, &mut rng());
        assert_eq!(fast, slow);
    }

    #[test]
    fn optimized_reduce_matches_reference_bit_for_bit() {
        let weights: Vec<f32> = (0..400).map(|i| 1.0 + (i % 7) as f32).collect();
        let c = Coreset::new((0..400).collect::<Vec<usize>>(), weights);
        let fast = reduce(c.clone(), 120, &mut rng());
        let slow = reference::reduce(c, 120, &mut rng());
        assert_eq!(fast, slow);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_and_stateless() {
        let l = LineLearner::new(1.0, 0.0);
        let mut scratch = CoresetScratch::new();
        // Warm the scratch on a differently-sized dataset first: leftover
        // capacity or stale contents must not leak into the next call.
        let warmup = noisy_dataset(3000);
        let _ = construct_with_scratch(
            &l,
            &warmup,
            &CoresetConfig { size: 200 },
            &mut rng(),
            &mut scratch,
        );
        let d = noisy_dataset(900);
        let cfg = CoresetConfig { size: 80 };
        let reused = construct_with_scratch(&l, &d, &cfg, &mut rng(), &mut scratch);
        let fresh = construct(&l, &d, &cfg, &mut rng());
        assert_eq!(reused, fresh);
    }

    #[test]
    fn merged_coreset_approximates_merged_dataset() {
        // The §III-D property: union of coresets ≈ coreset of union.
        let l = LineLearner::new(1.0, 0.0);
        let d1 = noisy_dataset(1500);
        let d2 = {
            let samples: Vec<Pt> = (0..1500)
                .map(|i| {
                    let x = (i as f32 / 1500.0) * 4.0 - 2.0;
                    Pt { x, y: x + 1.0 + (i % 13) as f32 / 13.0, group: i % 4 }
                })
                .collect();
            WeightedDataset::uniform(samples)
        };
        let mut r = rng();
        let c1 = construct(&l, &d1, &CoresetConfig { size: 150 }, &mut r);
        let c2 = construct(&l, &d2, &CoresetConfig { size: 150 }, &mut r);
        let merged_c = c1.merge(c2);
        let mut merged_d = d1.clone();
        for (s, w) in d2.pairs() {
            merged_d.push(*s, w);
        }
        let eps = empirical_epsilon(&l, &merged_c, &merged_d);
        assert!(eps < 0.15, "merged epsilon {eps}");
    }
}
