//! The shared asynchronous simulation runtime.
//!
//! Every method in the paper's evaluation — LbChat, SCO, and all four
//! benchmarks — runs inside the same loop: a mobility trace is played back
//! at the world frame rate; free vehicles train local iterations; vehicles
//! within radio range start pairwise sessions (or talk to infrastructure);
//! every transfer is charged real airtime on the simulated radio. Methods
//! differ only in the [`CollabAlgorithm`] implementation, so comparisons
//! are apples-to-apples.

use crate::config::ConfigError;
use crate::metrics::Metrics;
use crate::obs::ObsSink;
use rand::SeedableRng;
use simnet::channel::{Channel, RadioConfig, TransferOutcome};
use simnet::contact::{ContactEstimate, ContactPredictor};
use simnet::loss::LossModel;
use simnet::trace::MobilityTrace;
use vnn::ParamVec;

/// Runtime parameters shared by all methods.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Total simulated training time `T` in seconds.
    pub duration: f64,
    /// Training iterations a free vehicle performs per simulated second
    /// (models the paper's "except for the local training time, we ignore
    /// time for computation").
    pub train_iters_per_second: f64,
    /// Radio parameters (packet size, bandwidth, range, retransmissions).
    pub radio: RadioConfig,
    /// Wireless loss model (None for Fig. 2(a)/Table II, distance-based for
    /// Fig. 2(b)/Table III).
    pub loss_model: LossModel,
    /// Seconds between loss-curve evaluations.
    pub eval_every: f64,
    /// After a pairwise session, the same pair won't start another until
    /// this many seconds pass (they must gather new data / models to make a
    /// re-exchange useful).
    pub pair_cooldown: f64,
    /// Reference exchange time for the truncated contact ratio `z`.
    pub contact_reference_time: f64,
    /// Number of future route samples shared in assist messages (at the
    /// trace frame spacing).
    pub route_share_samples: usize,
    /// RNG seed for communication randomness.
    pub seed: u64,
    /// Observability sink for structured run events (`round`, `session`,
    /// `transfer`, `backend`, `chat`); disabled (zero-cost) by default.
    /// See [`crate::obs`].
    pub obs: ObsSink,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            duration: 3600.0,
            train_iters_per_second: 2.0,
            radio: RadioConfig::default(),
            loss_model: LossModel::None,
            eval_every: 120.0,
            pair_cooldown: 60.0,
            contact_reference_time: 30.0,
            route_share_samples: 240,
            seed: 0,
            obs: ObsSink::disabled(),
        }
    }
}

impl RuntimeConfig {
    /// Starts a validating builder from the defaults.
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder { cfg: Self::default() }
    }

    /// Checks every field against its domain (positive duration and eval
    /// cadence, non-negative rates). Struct-literal construction stays
    /// possible for tests; the builder calls this on [`RuntimeConfigBuilder::build`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        ConfigError::require_positive("duration", self.duration)?;
        ConfigError::require_non_negative(
            "train_iters_per_second",
            self.train_iters_per_second,
        )?;
        ConfigError::require_positive("eval_every", self.eval_every)?;
        ConfigError::require_non_negative("pair_cooldown", self.pair_cooldown)?;
        ConfigError::require_positive("contact_reference_time", self.contact_reference_time)?;
        Ok(())
    }
}

/// Validating builder for [`RuntimeConfig`]: chain setters from
/// [`RuntimeConfig::builder`], then [`RuntimeConfigBuilder::build`] rejects
/// out-of-domain values instead of letting them corrupt a simulation run.
///
/// ```
/// use lbchat::runtime::RuntimeConfig;
/// let cfg = RuntimeConfig::builder()
///     .duration(3600.0)
///     .eval_every(120.0)
///     .seed(7)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.duration, 3600.0);
/// assert!(RuntimeConfig::builder().duration(-1.0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeConfigBuilder {
    cfg: RuntimeConfig,
}

impl RuntimeConfigBuilder {
    /// Total simulated training time in seconds.
    pub fn duration(mut self, seconds: f64) -> Self {
        self.cfg.duration = seconds;
        self
    }

    /// Training iterations a free vehicle performs per simulated second.
    pub fn train_iters_per_second(mut self, rate: f64) -> Self {
        self.cfg.train_iters_per_second = rate;
        self
    }

    /// Radio parameters.
    pub fn radio(mut self, radio: RadioConfig) -> Self {
        self.cfg.radio = radio;
        self
    }

    /// Wireless loss model.
    pub fn loss_model(mut self, model: LossModel) -> Self {
        self.cfg.loss_model = model;
        self
    }

    /// Seconds between loss-curve evaluations.
    pub fn eval_every(mut self, seconds: f64) -> Self {
        self.cfg.eval_every = seconds;
        self
    }

    /// Per-pair cooldown between sessions, seconds.
    pub fn pair_cooldown(mut self, seconds: f64) -> Self {
        self.cfg.pair_cooldown = seconds;
        self
    }

    /// Reference exchange time for the truncated contact ratio.
    pub fn contact_reference_time(mut self, seconds: f64) -> Self {
        self.cfg.contact_reference_time = seconds;
        self
    }

    /// Future route samples shared in assist messages.
    pub fn route_share_samples(mut self, samples: usize) -> Self {
        self.cfg.route_share_samples = samples;
        self
    }

    /// RNG seed for communication randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Observability sink the runtime emits structured events into
    /// (disabled by default).
    pub fn obs(mut self, sink: ObsSink) -> Self {
        self.cfg.obs = sink;
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> Result<RuntimeConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// A pairwise radio link during one session, advancing its own elapsed time
/// as transfers are charged. Algorithms call [`LinkCtx::transfer`] for every
/// payload they move; the runtime uses the accumulated time to mark both
/// endpoints busy.
pub struct LinkCtx<'a> {
    /// Session start in simulated seconds.
    start: f64,
    /// Node ids at the endpoints.
    pub i: usize,
    /// Second endpoint.
    pub j: usize,
    trace: &'a MobilityTrace,
    channel: &'a Channel,
    rng: &'a mut rand::rngs::StdRng,
    /// Metrics sink for this run.
    pub metrics: &'a mut Metrics,
    est: ContactEstimate,
    elapsed: f64,
    obs: &'a ObsSink,
}

impl LinkCtx<'_> {
    /// The contact estimate (duration, z, p) computed from shared routes.
    pub fn contact(&self) -> ContactEstimate {
        self.est
    }

    /// The observability sink for this run (disabled unless the caller
    /// opted in through [`RuntimeConfig`]). Algorithms emit
    /// protocol-level events here — LbChat records one `chat` event per
    /// encounter with the valuation losses and chosen ψ ratios.
    pub fn obs(&self) -> &ObsSink {
        self.obs
    }

    /// Seconds already consumed in this session.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Current simulated time inside the session.
    pub fn now(&self) -> f64 {
        self.start + self.elapsed
    }

    /// Transfers `bytes` over the link with `deadline` seconds of session
    /// time remaining allowed (measured from now). Advances the session
    /// clock by the airtime consumed and returns whether the payload fully
    /// arrived. Distance-based loss follows the live trace positions.
    pub fn transfer(&mut self, bytes: usize, deadline: f64) -> TransferOutcome {
        let t0 = self.now();
        let trace = self.trace;
        let (i, j) = (self.i, self.j);
        let out = self.channel.transfer(
            bytes,
            deadline,
            |t| trace.distance(i, j, t0 + t) ,
            self.rng,
        );
        self.elapsed += out.elapsed();
        if self.obs.enabled() {
            let delivered_bytes = match out {
                TransferOutcome::Delivered { .. } => bytes,
                TransferOutcome::Failed { delivered_bytes, .. } => delivered_bytes,
            };
            self.obs.add("bytes_tx", bytes as u64);
            self.obs.add("bytes_delivered", delivered_bytes as u64);
            if !out.is_delivered() {
                self.obs.add("transfers_failed", 1);
            }
            self.obs.emit(
                "transfer",
                &[
                    ("i", self.i.into()),
                    ("j", self.j.into()),
                    ("t", t0.into()),
                    ("bytes", bytes.into()),
                    ("delivered", out.is_delivered().into()),
                    ("delivered_bytes", delivered_bytes.into()),
                    ("airtime_s", out.elapsed().into()),
                ],
            );
        }
        out
    }

    /// Charges airtime without moving payload (e.g. waiting on the peer's
    /// computation in a strictly alternating protocol).
    pub fn charge(&mut self, seconds: f64) {
        self.elapsed += seconds.max(0.0);
    }

    /// The RNG for protocol-level randomness.
    pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
        self.rng
    }
}

/// Per-frame context for infrastructure-based methods (central server,
/// RSUs): gives access to vehicle positions, a loss-model channel for
/// backend messages, and the metrics sink.
pub struct FrameCtx<'a> {
    /// Current simulated time.
    pub time: f64,
    /// The mobility trace (positions of all learning vehicles).
    pub trace: &'a MobilityTrace,
    /// The radio (used by RSU links; backend links use
    /// [`FrameCtx::backend_message`]).
    pub channel: &'a Channel,
    /// Busy-until times per node — infrastructure exchanges must respect
    /// ongoing V2V sessions.
    pub busy_until: &'a [f64],
    rng: &'a mut rand::rngs::StdRng,
    /// Metrics sink.
    pub metrics: &'a mut Metrics,
    loss_model: &'a LossModel,
    obs: &'a ObsSink,
}

impl FrameCtx<'_> {
    /// The RNG for protocol-level randomness.
    pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
        self.rng
    }

    /// Simulates one backend (cellular) message of a model-sized payload:
    /// the paper assumes *no bandwidth constraint* to the backend but, under
    /// wireless loss, draws a loss "uniformly sampled from the distance-loss
    /// lookup table" per communication. Returns whether the message got
    /// through; records it as a model send.
    pub fn backend_message(&mut self, bytes: usize) -> bool {
        use rand::RngExt as _;
        let per = self.loss_model.sample_uniform_per(self.rng);
        // Message-level Bernoulli: a single end-to-end success draw (the
        // backend is not packetized by the paper's model).
        let delivered = per <= 0.0 || self.rng.random::<f32>() >= per;
        self.metrics.record_model_send(delivered, bytes, 0.0);
        if self.obs.enabled() {
            self.obs.add("bytes_tx", bytes as u64);
            if delivered {
                self.obs.add("bytes_delivered", bytes as u64);
            } else {
                self.obs.add("transfers_failed", 1);
            }
            self.obs.emit(
                "backend",
                &[
                    ("t", self.time.into()),
                    ("bytes", bytes.into()),
                    ("delivered", delivered.into()),
                ],
            );
        }
        delivered
    }

    /// The observability sink for this run; see [`LinkCtx::obs`].
    pub fn obs(&self) -> &ObsSink {
        self.obs
    }
}

/// A collaborative-training method runnable by the [`Runtime`].
pub trait CollabAlgorithm {
    /// The task sample type (evaluation needs a held-out set of these).
    type Sample;

    /// Number of participating vehicles.
    fn n_nodes(&self) -> usize;

    /// The current model of a node (for inspection / driving evaluation).
    fn model(&self, node: usize) -> &ParamVec;

    /// Performs `iters` local training iterations on `node` and returns the
    /// training-kernel statistics drained from the node's learner (zero for
    /// uninstrumented implementations). The runtime aggregates them into
    /// the `train.*` observability counters.
    fn local_training(
        &mut self,
        node: usize,
        iters: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> crate::learner::TrainStats;

    /// Handles a pairwise encounter; returns the session duration in
    /// seconds (both nodes stay busy that long). Use `link.transfer` for
    /// every payload so airtime and receiving rates are accounted.
    fn encounter(&mut self, i: usize, j: usize, link: &mut LinkCtx<'_>) -> f64;

    /// Ranks a potential encounter for greedy pair matching (higher =
    /// served first). The default is 0 — no prioritization; pairs are
    /// served in arbitrary (encounter-enumeration) order, which is what the
    /// model-sharing-only baselines do. LbChat overrides this with the
    /// Eq. (5) score computed from shared routes — its route-sharing
    /// advantage. Return `-inf` to opt out of V2V pairing entirely
    /// (infrastructure-only methods).
    fn pair_priority(&self, _i: usize, _j: usize, _est: &ContactEstimate) -> f64 {
        0.0
    }

    /// Per-frame hook for infrastructure communication (server rounds,
    /// RSUs). Default: nothing.
    fn on_frame(&mut self, _ctx: &mut FrameCtx<'_>) {}

    /// Mean evaluation loss across all nodes on a held-out sample set.
    fn mean_eval_loss(&self, eval: &[Self::Sample]) -> f64;

    /// Display name (table headers).
    fn name(&self) -> &'static str;
}

/// The shared simulation loop.
#[derive(Debug, Clone)]
pub struct Runtime {
    config: RuntimeConfig,
}

impl Runtime {
    /// Creates a runtime.
    pub fn new(config: RuntimeConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Runs `algo` over `trace` for the configured duration, evaluating on
    /// `eval` along the way. Returns the collected metrics.
    ///
    /// # Panics
    /// Panics if the trace has fewer agents than the algorithm has nodes.
    pub fn run<A: CollabAlgorithm>(
        &self,
        algo: &mut A,
        trace: &MobilityTrace,
        eval: &[A::Sample],
    ) -> Metrics {
        let n = algo.n_nodes();
        assert!(
            trace.n_agents() >= n,
            "trace has {} agents but the algorithm needs {}",
            trace.n_agents(),
            n
        );
        let cfg = &self.config;
        let dt = 1.0 / trace.fps();
        let channel = Channel::new(cfg.radio.clone(), cfg.loss_model.clone());
        let predictor = ContactPredictor::new(
            cfg.radio.range_m,
            cfg.radio.max_retx,
            cfg.loss_model.clone(),
            cfg.contact_reference_time,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed.wrapping_add(0xC0FFEE));
        let mut metrics = Metrics::new();
        let mut busy_until = vec![0.0f64; n];
        let mut pair_cooldown_until = vec![0.0f64; n * n];
        let mut train_debt = vec![0.0f64; n];
        let mut next_eval = 0.0f64;
        let active: Vec<usize> = (0..n).collect();

        let mut time = 0.0f64;
        while time < cfg.duration {
            // 1. Infrastructure hook.
            {
                let mut fctx = FrameCtx {
                    time,
                    trace,
                    channel: &channel,
                    busy_until: &busy_until,
                    rng: &mut rng,
                    metrics: &mut metrics,
                    loss_model: &cfg.loss_model,
                    obs: &cfg.obs,
                };
                algo.on_frame(&mut fctx);
            }

            // 2. Encounters among free vehicles.
            let mut candidates: Vec<(f64, usize, usize, ContactEstimate)> = Vec::new();
            for e in trace.encounters_at(time, cfg.radio.range_m, &active) {
                let (i, j) = (e.a, e.b);
                if busy_until[i] > time || busy_until[j] > time {
                    continue;
                }
                if pair_cooldown_until[pair_idx(i, j, n)] > time {
                    continue;
                }
                let fut_i = trace.future(i, time, dt, cfg.route_share_samples);
                let fut_j = trace.future(j, time, dt, cfg.route_share_samples);
                let est = predictor.estimate(&fut_i, &fut_j, dt);
                let score = algo.pair_priority(i, j, &est);
                if !score.is_finite() {
                    continue; // method opted out of this pairing
                }
                candidates.push((score, i, j, est));
            }
            // Greedy matching by descending priority — each vehicle serves
            // its best-scored neighbor first (§III-A).
            // total_cmp: scores are finite (non-finite ones are filtered
            // above), and a total order never panics mid-sort.
            candidates.sort_by(|a, b| b.0.total_cmp(&a.0));
            let mut taken = vec![false; n];
            for (score, i, j, est) in candidates {
                if taken[i] || taken[j] {
                    continue;
                }
                taken[i] = true;
                taken[j] = true;
                metrics.sessions += 1;
                let mut link = LinkCtx {
                    start: time,
                    i,
                    j,
                    trace,
                    channel: &channel,
                    rng: &mut rng,
                    metrics: &mut metrics,
                    est,
                    elapsed: 0.0,
                    obs: &cfg.obs,
                };
                let duration = algo.encounter(i, j, &mut link);
                if cfg.obs.enabled() {
                    cfg.obs.add("sessions", 1);
                    cfg.obs.emit(
                        "session",
                        &[
                            ("i", i.into()),
                            ("j", j.into()),
                            ("t", time.into()),
                            ("priority", score.into()),
                            ("duration_s", duration.into()),
                        ],
                    );
                }
                let until = time + duration.max(dt);
                busy_until[i] = until;
                busy_until[j] = until;
                pair_cooldown_until[pair_idx(i, j, n)] = until + cfg.pair_cooldown;
                pair_cooldown_until[pair_idx(j, i, n)] = until + cfg.pair_cooldown;
            }

            // 3. Local training for free vehicles (fractional iteration
            // accounting keeps any iters-per-second rate exact over time).
            for v in 0..n {
                if busy_until[v] > time {
                    continue;
                }
                train_debt[v] += cfg.train_iters_per_second * dt;
                let iters = train_debt[v].floor() as usize;
                if iters > 0 {
                    train_debt[v] -= iters as f64;
                    let stats = algo.local_training(v, iters, &mut rng);
                    metrics.train_iterations += iters as u64;
                    if cfg.obs.enabled() && stats.batches > 0 {
                        cfg.obs.add("train.batch", stats.batches);
                        cfg.obs.add("train.samples", stats.samples);
                        cfg.obs.add("train.scratch_reuse", stats.scratch_reuse);
                    }
                }
            }

            // 4. Periodic evaluation.
            if time >= next_eval {
                let loss = algo.mean_eval_loss(eval);
                metrics.record_loss(time, loss);
                emit_round(&cfg.obs, algo.name(), time, loss);
                next_eval += cfg.eval_every;
            }

            time += dt;
        }
        let loss = algo.mean_eval_loss(eval);
        metrics.record_loss(cfg.duration, loss);
        emit_round(&cfg.obs, algo.name(), cfg.duration, loss);
        metrics
    }
}

/// One `round` event per loss-curve sample: the quantity Fig. 2 plots.
/// Flat index of the ordered pair `(i, j)` in the `n × n` cooldown
/// matrix. Both ids come from the trace roster, so `i < n` and `j < n`
/// by construction and the product stays within the `n * n` allocation.
fn pair_idx(i: usize, j: usize, n: usize) -> usize {
    i * n + j
}

fn emit_round(obs: &ObsSink, method: &str, t: f64, loss: f64) {
    if obs.enabled() {
        obs.add("rounds", 1);
        obs.emit("round", &[("method", method.into()), ("t", t.into()), ("loss", loss.into())]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::geom::Vec2;

    /// A do-nothing algorithm counting callbacks — exercises the loop
    /// mechanics without any learning.
    struct Probe {
        n: usize,
        params: ParamVec,
        train_calls: u64,
        encounters: u64,
        frames: u64,
    }

    impl CollabAlgorithm for Probe {
        type Sample = ();

        fn n_nodes(&self) -> usize {
            self.n
        }
        fn model(&self, _node: usize) -> &ParamVec {
            &self.params
        }
        fn local_training(
            &mut self,
            _n: usize,
            iters: usize,
            _r: &mut rand::rngs::StdRng,
        ) -> crate::learner::TrainStats {
            self.train_calls += iters as u64;
            crate::learner::TrainStats::default()
        }
        fn encounter(&mut self, _i: usize, _j: usize, link: &mut LinkCtx<'_>) -> f64 {
            self.encounters += 1;
            // Move a small payload to exercise the link.
            let out = link.transfer(15_000, 5.0);
            link.metrics.record_coreset_send(out.is_delivered(), 15_000, out.elapsed());
            link.elapsed()
        }
        fn on_frame(&mut self, _ctx: &mut FrameCtx<'_>) {
            self.frames += 1;
        }
        fn mean_eval_loss(&self, _eval: &[()]) -> f64 {
            1.0
        }
        fn name(&self) -> &'static str {
            "probe"
        }
    }

    fn two_vehicle_trace(seconds: f64) -> MobilityTrace {
        // Two vehicles parked 100 m apart: permanently in contact.
        let frames = (seconds * 2.0) as usize + 1;
        MobilityTrace::new(
            2.0,
            vec![
                vec![Vec2::ZERO; frames],
                vec![Vec2::new(100.0, 0.0); frames],
            ],
        )
    }

    fn far_trace(seconds: f64) -> MobilityTrace {
        let frames = (seconds * 2.0) as usize + 1;
        MobilityTrace::new(
            2.0,
            vec![
                vec![Vec2::ZERO; frames],
                vec![Vec2::new(2000.0, 0.0); frames],
            ],
        )
    }

    fn runtime(duration: f64) -> Runtime {
        Runtime::new(RuntimeConfig {
            duration,
            eval_every: 30.0,
            pair_cooldown: 20.0,
            ..RuntimeConfig::default()
        })
    }

    #[test]
    fn encounters_happen_in_range() {
        let trace = two_vehicle_trace(120.0);
        let mut probe =
            Probe { n: 2, params: ParamVec::zeros(1), train_calls: 0, encounters: 0, frames: 0 };
        let m = runtime(120.0).run(&mut probe, &trace, &[]);
        assert!(probe.encounters >= 3, "cooldown allows several sessions: {}", probe.encounters);
        assert_eq!(m.sessions, probe.encounters);
        assert!(m.coreset_receives > 0);
    }

    #[test]
    fn no_encounters_out_of_range() {
        let trace = far_trace(60.0);
        let mut probe =
            Probe { n: 2, params: ParamVec::zeros(1), train_calls: 0, encounters: 0, frames: 0 };
        runtime(60.0).run(&mut probe, &trace, &[]);
        assert_eq!(probe.encounters, 0);
    }

    #[test]
    fn training_iterations_match_rate() {
        let trace = far_trace(100.0);
        let mut probe =
            Probe { n: 2, params: ParamVec::zeros(1), train_calls: 0, encounters: 0, frames: 0 };
        let m = runtime(100.0).run(&mut probe, &trace, &[]);
        // 2 nodes * 100 s * 2 iters/s = 400.
        assert_eq!(m.train_iterations, 400);
        assert_eq!(probe.train_calls, 400);
    }

    #[test]
    fn loss_curve_sampled_periodically() {
        let trace = far_trace(100.0);
        let mut probe =
            Probe { n: 2, params: ParamVec::zeros(1), train_calls: 0, encounters: 0, frames: 0 };
        let m = runtime(100.0).run(&mut probe, &trace, &[]);
        // 0, 30, 60, 90 + final.
        assert_eq!(m.loss_curve.len(), 5);
        assert_eq!(m.loss_curve.last().unwrap().0, 100.0);
    }

    #[test]
    fn on_frame_called_every_frame() {
        let trace = far_trace(50.0);
        let mut probe =
            Probe { n: 2, params: ParamVec::zeros(1), train_calls: 0, encounters: 0, frames: 0 };
        runtime(50.0).run(&mut probe, &trace, &[]);
        assert_eq!(probe.frames, 100, "2 fps over 50 s");
    }

    #[test]
    fn pair_cooldown_limits_session_rate() {
        let trace = two_vehicle_trace(100.0);
        let mut probe =
            Probe { n: 2, params: ParamVec::zeros(1), train_calls: 0, encounters: 0, frames: 0 };
        // 100 s with a 50 s cooldown and near-instant sessions: at most 3
        // sessions can fit (t=0, ~50, ~100).
        let rt = Runtime::new(RuntimeConfig {
            duration: 100.0,
            pair_cooldown: 50.0,
            ..RuntimeConfig::default()
        });
        let m = rt.run(&mut probe, &trace, &[]);
        assert!(m.sessions <= 3, "cooldown must limit sessions: {}", m.sessions);
        assert!(m.sessions >= 2);
    }

    #[test]
    fn busy_nodes_do_not_train() {
        // An algorithm whose sessions take 10 s: training iterations are
        // suppressed during the busy window.
        struct Slow {
            params: ParamVec,
            train_calls: u64,
        }
        impl CollabAlgorithm for Slow {
            type Sample = ();
            fn n_nodes(&self) -> usize {
                2
            }
            fn model(&self, _n: usize) -> &ParamVec {
                &self.params
            }
            fn local_training(
                &mut self,
                _n: usize,
                iters: usize,
                _r: &mut rand::rngs::StdRng,
            ) -> crate::learner::TrainStats {
                self.train_calls += iters as u64;
                crate::learner::TrainStats::default()
            }
            fn encounter(&mut self, _i: usize, _j: usize, link: &mut LinkCtx<'_>) -> f64 {
                link.charge(10.0);
                link.elapsed()
            }
            fn mean_eval_loss(&self, _e: &[()]) -> f64 {
                0.0
            }
            fn name(&self) -> &'static str {
                "slow"
            }
        }
        let trace = two_vehicle_trace(100.0);
        let mut slow = Slow { params: ParamVec::zeros(1), train_calls: 0 };
        let rt = Runtime::new(RuntimeConfig {
            duration: 100.0,
            pair_cooldown: 1000.0, // single session
            ..RuntimeConfig::default()
        });
        rt.run(&mut slow, &trace, &[]);
        // 2 nodes * 100 s * 2 it/s = 400 if never busy; one 10 s session
        // for both nodes removes ~40 iterations.
        assert!(slow.train_calls <= 365, "busy time must suppress training: {}", slow.train_calls);
        assert!(slow.train_calls >= 330);
    }

    #[test]
    fn obs_sink_records_runtime_events() {
        let trace = two_vehicle_trace(100.0);
        let sink = ObsSink::recording();
        let mut probe =
            Probe { n: 2, params: ParamVec::zeros(1), train_calls: 0, encounters: 0, frames: 0 };
        let rt = Runtime::new(RuntimeConfig {
            duration: 100.0,
            eval_every: 30.0,
            pair_cooldown: 20.0,
            obs: sink.clone(),
            ..RuntimeConfig::default()
        });
        let m = rt.run(&mut probe, &trace, &[]);
        let events = sink.events();
        let count = |k: &str| events.iter().filter(|e| e.kind == k).count() as u64;
        assert_eq!(count("session"), m.sessions);
        assert_eq!(count("round") as usize, m.loss_curve.len());
        // The probe moves one 15 kB payload per session.
        assert_eq!(count("transfer"), m.sessions);
        assert_eq!(sink.counters()["sessions"], m.sessions);
        assert_eq!(sink.counters()["bytes_tx"], m.sessions * 15_000);
        assert_eq!(sink.counters()["rounds"] as usize, m.loss_curve.len());
        let session = events.iter().find(|e| e.kind == "session").unwrap();
        for field in ["i", "j", "t", "priority", "duration_s"] {
            assert!(session.get(field).is_some(), "session event missing {field}");
        }
        let transfer = events.iter().find(|e| e.kind == "transfer").unwrap();
        assert_eq!(transfer.get("bytes"), Some(&crate::obs::Json::UInt(15_000)));
    }

    #[test]
    fn builder_accepts_sane_configs() {
        let cfg = RuntimeConfig::builder()
            .duration(100.0)
            .train_iters_per_second(0.0)
            .eval_every(10.0)
            .pair_cooldown(0.0)
            .route_share_samples(16)
            .seed(99)
            .build()
            .expect("all fields in domain");
        assert_eq!(cfg.duration, 100.0);
        assert_eq!(cfg.route_share_samples, 16);
        assert_eq!(cfg.seed, 99);
        // Untouched knobs keep their defaults.
        assert_eq!(cfg.contact_reference_time, RuntimeConfig::default().contact_reference_time);
    }

    #[test]
    fn builder_rejects_nonsense() {
        use crate::config::ConfigError;
        assert!(matches!(
            RuntimeConfig::builder().duration(-3600.0).build(),
            Err(ConfigError::NonPositive { field: "duration", .. })
        ));
        assert!(matches!(
            RuntimeConfig::builder().eval_every(0.0).build(),
            Err(ConfigError::NonPositive { field: "eval_every", .. })
        ));
        assert!(RuntimeConfig::builder().duration(f64::NAN).build().is_err());
        assert!(RuntimeConfig::builder().pair_cooldown(-1.0).build().is_err());
        assert!(RuntimeConfig::builder().train_iters_per_second(f64::INFINITY).build().is_err());
    }

    #[test]
    #[should_panic(expected = "trace has")]
    fn trace_too_small_panics() {
        let trace = two_vehicle_trace(10.0);
        let mut probe =
            Probe { n: 5, params: ParamVec::zeros(1), train_calls: 0, encounters: 0, frames: 0 };
        runtime(10.0).run(&mut probe, &trace, &[]);
    }
}
