//! Training metrics: loss-vs-time curves (Fig. 2 / Fig. 3) and the
//! successful model receiving rate (§IV-C).

/// Metrics collected over one collaborative-training run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// `(sim_time_s, mean_eval_loss)` samples — the Fig. 2/3 curves.
    pub loss_curve: Vec<(f64, f64)>,
    /// Model transfers attempted (per direction).
    pub model_sends: u64,
    /// Model transfers fully delivered.
    pub model_receives: u64,
    /// Coreset transfers attempted.
    pub coreset_sends: u64,
    /// Coreset transfers fully delivered.
    pub coreset_receives: u64,
    /// Pairwise sessions started.
    pub sessions: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// Total simulated seconds spent in pairwise communication.
    pub comm_seconds: f64,
    /// Local training iterations performed across all nodes.
    pub train_iterations: u64,
}

impl Metrics {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a loss-curve point.
    pub fn record_loss(&mut self, time: f64, loss: f64) {
        self.loss_curve.push((time, loss));
    }

    /// Records a model transfer attempt.
    pub fn record_model_send(&mut self, delivered: bool, bytes: usize, seconds: f64) {
        self.model_sends += 1;
        if delivered {
            self.model_receives += 1;
            self.bytes_delivered += bytes as u64;
        }
        self.comm_seconds += seconds;
    }

    /// Records a coreset transfer attempt.
    pub fn record_coreset_send(&mut self, delivered: bool, bytes: usize, seconds: f64) {
        self.coreset_sends += 1;
        if delivered {
            self.coreset_receives += 1;
            self.bytes_delivered += bytes as u64;
        }
        self.comm_seconds += seconds;
    }

    /// The §IV-C "successful model receiving rate": delivered / attempted.
    /// Returns 1.0 when nothing was attempted.
    pub fn model_receiving_rate(&self) -> f64 {
        if self.model_sends == 0 {
            1.0
        } else {
            self.model_receives as f64 / self.model_sends as f64
        }
    }

    /// Final loss of the curve, if any point was recorded.
    pub fn final_loss(&self) -> Option<f64> {
        self.loss_curve.last().map(|&(_, l)| l)
    }

    /// First time the loss curve dips below `threshold` — the convergence
    ///-time measure behind Fig. 3's "1.5×–1.8× longer to converge".
    pub fn time_to_loss(&self, threshold: f64) -> Option<f64> {
        self.loss_curve
            .iter()
            .find(|&&(_, l)| l <= threshold)
            .map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiving_rate_counts_correctly() {
        let mut m = Metrics::new();
        m.record_model_send(true, 100, 1.0);
        m.record_model_send(false, 100, 0.5);
        m.record_model_send(true, 100, 1.0);
        assert!((m.model_receiving_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.bytes_delivered, 200);
        assert!((m.comm_seconds - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_rate_is_one() {
        assert_eq!(Metrics::new().model_receiving_rate(), 1.0);
    }

    #[test]
    fn time_to_loss_finds_first_crossing() {
        let mut m = Metrics::new();
        m.record_loss(0.0, 1.0);
        m.record_loss(10.0, 0.6);
        m.record_loss(20.0, 0.4);
        m.record_loss(30.0, 0.45);
        assert_eq!(m.time_to_loss(0.5), Some(20.0));
        assert_eq!(m.time_to_loss(0.1), None);
        assert_eq!(m.final_loss(), Some(0.45));
    }
}
