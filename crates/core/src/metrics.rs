//! Training metrics: loss-vs-time curves (Fig. 2 / Fig. 3) and the
//! successful model receiving rate (§IV-C).

/// Metrics collected over one collaborative-training run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// `(sim_time_s, mean_eval_loss)` samples — the Fig. 2/3 curves.
    pub loss_curve: Vec<(f64, f64)>,
    /// Model transfers attempted (per direction).
    pub model_sends: u64,
    /// Model transfers fully delivered.
    pub model_receives: u64,
    /// Coreset transfers attempted.
    pub coreset_sends: u64,
    /// Coreset transfers fully delivered.
    pub coreset_receives: u64,
    /// Pairwise sessions started.
    pub sessions: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// Total simulated seconds spent in pairwise communication.
    pub comm_seconds: f64,
    /// Local training iterations performed across all nodes.
    pub train_iterations: u64,
}

impl Metrics {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a loss-curve point.
    pub fn record_loss(&mut self, time: f64, loss: f64) {
        self.loss_curve.push((time, loss));
    }

    /// Records a model transfer attempt.
    pub fn record_model_send(&mut self, delivered: bool, bytes: usize, seconds: f64) {
        self.model_sends += 1;
        if delivered {
            self.model_receives += 1;
            self.bytes_delivered += bytes as u64;
        }
        self.comm_seconds += seconds;
    }

    /// Records a coreset transfer attempt.
    pub fn record_coreset_send(&mut self, delivered: bool, bytes: usize, seconds: f64) {
        self.coreset_sends += 1;
        if delivered {
            self.coreset_receives += 1;
            self.bytes_delivered += bytes as u64;
        }
        self.comm_seconds += seconds;
    }

    /// Merges another record into this one: counters add, loss curves
    /// concatenate and re-sort by time. Used to combine metrics collected by
    /// parallel workers into one run-level record; merging records whose
    /// time ranges interleave is well-defined (points sort stably by time).
    pub fn merge(&mut self, other: &Metrics) {
        self.loss_curve.extend_from_slice(&other.loss_curve);
        self.loss_curve
            // audit:allow(P005): curve times are sim-clock f64 counters, never NaN; a NaN here is a corrupted run worth aborting
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite loss-curve times"));
        self.model_sends += other.model_sends;
        self.model_receives += other.model_receives;
        self.coreset_sends += other.coreset_sends;
        self.coreset_receives += other.coreset_receives;
        self.sessions += other.sessions;
        self.bytes_delivered += other.bytes_delivered;
        self.comm_seconds += other.comm_seconds;
        self.train_iterations += other.train_iterations;
    }

    /// The §IV-C "successful model receiving rate": delivered / attempted.
    /// Returns 1.0 when nothing was attempted.
    pub fn model_receiving_rate(&self) -> f64 {
        if self.model_sends == 0 {
            1.0
        } else {
            self.model_receives as f64 / self.model_sends as f64
        }
    }

    /// Final loss of the curve, if any point was recorded.
    pub fn final_loss(&self) -> Option<f64> {
        self.loss_curve.last().map(|&(_, l)| l)
    }

    /// First time the loss curve dips below `threshold` — the convergence
    ///-time measure behind Fig. 3's "1.5×–1.8× longer to converge".
    pub fn time_to_loss(&self, threshold: f64) -> Option<f64> {
        self.loss_curve
            .iter()
            .find(|&&(_, l)| l <= threshold)
            .map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiving_rate_counts_correctly() {
        let mut m = Metrics::new();
        m.record_model_send(true, 100, 1.0);
        m.record_model_send(false, 100, 0.5);
        m.record_model_send(true, 100, 1.0);
        assert!((m.model_receiving_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.bytes_delivered, 200);
        assert!((m.comm_seconds - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_rate_is_one() {
        assert_eq!(Metrics::new().model_receiving_rate(), 1.0);
    }

    #[test]
    fn merge_adds_counters_and_sorts_curves() {
        let mut a = Metrics::new();
        a.record_loss(0.0, 1.0);
        a.record_loss(20.0, 0.5);
        a.record_model_send(true, 100, 1.0);
        let mut b = Metrics::new();
        b.record_loss(10.0, 0.8);
        b.record_model_send(false, 100, 0.5);
        b.record_coreset_send(true, 50, 0.25);
        b.sessions = 2;
        a.merge(&b);
        assert_eq!(
            a.loss_curve,
            vec![(0.0, 1.0), (10.0, 0.8), (20.0, 0.5)],
            "curves must interleave by time"
        );
        assert_eq!(a.model_sends, 2);
        assert_eq!(a.model_receives, 1);
        assert_eq!(a.coreset_receives, 1);
        assert_eq!(a.sessions, 2);
        assert_eq!(a.bytes_delivered, 150);
        assert!((a.comm_seconds - 1.75).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Metrics::new();
        a.record_loss(1.0, 0.9);
        a.record_model_send(true, 10, 0.1);
        let snapshot = a.clone();
        a.merge(&Metrics::new());
        assert_eq!(a.loss_curve, snapshot.loss_curve);
        assert_eq!(a.model_sends, snapshot.model_sends);
        assert_eq!(a.bytes_delivered, snapshot.bytes_delivered);
    }

    #[test]
    fn time_to_loss_finds_first_crossing() {
        let mut m = Metrics::new();
        m.record_loss(0.0, 1.0);
        m.record_loss(10.0, 0.6);
        m.record_loss(20.0, 0.4);
        m.record_loss(30.0, 0.45);
        assert_eq!(m.time_to_loss(0.5), Some(20.0));
        assert_eq!(m.time_to_loss(0.1), None);
        assert_eq!(m.final_loss(), Some(0.45));
    }
}
