//! Property tests pinning the event runtime to the retained reference
//! frame loop: with contention disabled, [`Runtime::run`] must reproduce
//! [`Runtime::run_reference`] bit for bit — same loss curve, same
//! counters, same airtime accounting — for any trace geometry, loss
//! model, cooldown, training rate, and seed.
//!
//! The probe algorithm deliberately consumes protocol randomness and
//! streams a variable number of transfers per session, so any divergence
//! in RNG order, matching order, or transfer accounting between the two
//! engines is caught immediately rather than being masked by a trivial
//! protocol.

use lbchat::prelude::*;
use proptest::prelude::*;
use rand::RngExt as _;
use simnet::geom::Vec2;
use simnet::loss::LossModel;
use simnet::trace::MobilityTrace;
use vnn::ParamVec;

/// A chatty probe: each session draws its transfer count and payload
/// sizes from the protocol RNG, declines a fraction of pairings, and
/// records every payload in the metrics — a miniature of the real
/// multi-phase LbChat session without any learning.
struct Chatter {
    n: usize,
    params: ParamVec,
}

struct ChatterSession {
    remaining: u32,
}

impl CollabAlgorithm for Chatter {
    type Sample = ();
    type Session = ChatterSession;

    fn n_nodes(&self) -> usize {
        self.n
    }

    fn model(&self, _node: usize) -> &ParamVec {
        &self.params
    }

    fn local_training(
        &mut self,
        _node: usize,
        _iters: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> TrainStats {
        // Consume shared randomness so training order matters too.
        let _: f32 = rng.random();
        TrainStats::default()
    }

    fn session_open(&mut self, ctx: &mut SessionCtx<'_>) -> Option<(ChatterSession, SessionStep)> {
        let decline: f32 = ctx.rng().random();
        if decline < 0.125 {
            return None;
        }
        let remaining = (ctx.rng().random::<f32>() * 3.0) as u32;
        let bytes = 10_000 + (ctx.rng().random::<f32>() * 40_000.0) as usize;
        Some((ChatterSession { remaining }, SessionStep::Transfer(TransferSpec::link(bytes, 8.0))))
    }

    fn session_step(
        &mut self,
        state: &mut ChatterSession,
        out: TransferOutcome,
        ctx: &mut SessionCtx<'_>,
    ) -> SessionStep {
        ctx.metrics.record_coreset_send(out.is_delivered(), 10_000, out.elapsed());
        if !out.is_delivered() || state.remaining == 0 {
            return SessionStep::Done;
        }
        state.remaining -= 1;
        let bytes = 5_000 + (ctx.rng().random::<f32>() * 20_000.0) as usize;
        SessionStep::Transfer(TransferSpec::link(bytes, 6.0))
    }

    fn session_close(&mut self, _state: ChatterSession, ctx: &mut SessionCtx<'_>) -> f64 {
        ctx.elapsed()
    }

    fn mean_eval_loss(&self, _eval: &[()]) -> f64 {
        1.0
    }

    fn name(&self) -> &'static str {
        "chatter"
    }
}

/// Vehicles on parallel lanes drifting along x at per-vehicle speeds, so
/// pairs move in and out of radio range over the run.
fn build_trace(vehicles: &[(f32, f32)], duration: f64) -> MobilityTrace {
    let fps = 2.0;
    let frames = (duration * fps) as usize + 1;
    let positions = vehicles
        .iter()
        .enumerate()
        .map(|(k, &(x0, vx))| {
            (0..frames)
                .map(|f| {
                    let t = f as f32 / fps as f32;
                    Vec2::new(x0 + vx * t, k as f32 * 30.0)
                })
                .collect()
        })
        .collect();
    MobilityTrace::new(fps, positions)
}

fn assert_same_run(cfg: RuntimeConfig, vehicles: &[(f32, f32)]) {
    let trace = build_trace(vehicles, cfg.duration);
    let rt = Runtime::new(cfg);
    let mut ae = Chatter { n: vehicles.len(), params: ParamVec::zeros(1) };
    let me = rt.run(&mut ae, &trace, &[]).expect("trace fits");
    let mut ar = Chatter { n: vehicles.len(), params: ParamVec::zeros(1) };
    let mr = rt.run_reference(&mut ar, &trace, &[]).expect("trace fits");

    assert_eq!(me.loss_curve.len(), mr.loss_curve.len());
    for ((te, le), (tr, lr)) in me.loss_curve.iter().zip(&mr.loss_curve) {
        assert_eq!(te.to_bits(), tr.to_bits(), "loss-curve time diverged");
        assert_eq!(le.to_bits(), lr.to_bits(), "loss-curve value diverged");
    }
    assert_eq!(me.sessions, mr.sessions);
    assert_eq!(me.coreset_sends, mr.coreset_sends);
    assert_eq!(me.coreset_receives, mr.coreset_receives);
    assert_eq!(me.model_sends, mr.model_sends);
    assert_eq!(me.model_receives, mr.model_receives);
    assert_eq!(me.bytes_delivered, mr.bytes_delivered);
    assert_eq!(me.comm_seconds.to_bits(), mr.comm_seconds.to_bits());
    assert_eq!(me.train_iterations, mr.train_iterations);
}

fn vehicles_strategy() -> impl Strategy<Value = Vec<(f32, f32)>> {
    prop::collection::vec((-400.0f32..400.0, -12.0f32..12.0), 2..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn event_loop_matches_reference_without_contention(
        vehicles in vehicles_strategy(),
        duration in 30.0f64..90.0,
        seed in 0u64..1_000,
        cooldown in 0.0f64..40.0,
        lossy in 0u32..2,
        train_rate in 0.0f64..4.0,
    ) {
        let cfg = RuntimeConfig {
            duration,
            train_iters_per_second: train_rate,
            loss_model: if lossy == 1 { LossModel::distance_default() } else { LossModel::None },
            eval_every: 25.0,
            pair_cooldown: cooldown,
            seed,
            ..RuntimeConfig::default()
        };
        assert_same_run(cfg, &vehicles);
    }
}

/// The paper-shaped corner cases the strategy may not hit every run:
/// zero-length cooldowns, sub-frame durations, and a dense fleet.
#[test]
fn event_loop_matches_reference_on_edge_configs() {
    for (duration, cooldown, seed) in [(0.6, 0.0, 7), (45.0, 0.0, 1), (45.0, 200.0, 2)] {
        let cfg = RuntimeConfig {
            duration,
            pair_cooldown: cooldown,
            eval_every: 10.0,
            seed,
            loss_model: LossModel::distance_default(),
            ..RuntimeConfig::default()
        };
        let fleet: Vec<(f32, f32)> =
            (0..6).map(|k| (k as f32 * 90.0, if k % 2 == 0 { 3.0 } else { -3.0 })).collect();
        assert_same_run(cfg, &fleet);
    }
}
