//! Property tests pinning the optimized coreset paths to the pinned
//! reference implementations and to the invariants Algorithm 1 promises:
//! bit-identical output, total-weight preservation, a documented size
//! bound, and fixed-seed determinism (including scratch-buffer reuse).

use lbchat::coreset::{
    construct, construct_with_scratch, reduce, reference, Coreset, CoresetConfig, CoresetScratch,
};
use lbchat::{Learner, WeightedDataset};
use proptest::prelude::*;
use rand::SeedableRng;
use vnn::ParamVec;

/// A line-fitting learner: deterministic per-sample losses with enough
/// spread that the loss-layering in Algorithm 1 populates several layers.
#[derive(Debug, Clone)]
struct Line(ParamVec);

impl Line {
    fn unit() -> Self {
        Line(ParamVec::from_vec(vec![1.0, 0.0]))
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Pt(f32, f32);

impl Learner for Line {
    type Sample = Pt;
    fn params(&self) -> &ParamVec {
        &self.0
    }
    fn set_params(&mut self, p: ParamVec) {
        self.0 = p;
    }
    fn loss(&self, s: &Pt) -> f32 {
        self.loss_with(&self.0, s)
    }
    fn loss_with(&self, p: &ParamVec, s: &Pt) -> f32 {
        let w = p.as_slice();
        let r = w[0] * s.0 + w[1] - s.1;
        r * r
    }
    fn train_step(&mut self, _b: &[(&Pt, f32)]) -> f32 {
        0.0
    }
    fn group_of(&self, _s: &Pt) -> usize {
        0
    }
    fn n_groups(&self) -> usize {
        1
    }
}

fn dataset_strategy() -> impl Strategy<Value = WeightedDataset<Pt>> {
    prop::collection::vec(((-10.0f32..10.0, -10.0f32..10.0), 0.1f32..20.0), 20..400).prop_map(
        |rows| {
            let (samples, weights): (Vec<Pt>, Vec<f32>) =
                rows.into_iter().map(|((x, y), w)| (Pt(x, y), w)).unzip();
            WeightedDataset::new(samples, weights)
        },
    )
}

/// The documented size bound: the per-layer quota is
/// `round(budget · share)` clamped to `[1, layer.len()]`, so each nonempty
/// layer can overshoot its share by at most one sample. With
/// `ceil(log2(n + 1)) + 1` possible layers, the result never exceeds
/// `max(size, n_layers) + n_layers` (and never `n`).
fn size_bound(n: usize, size: usize) -> usize {
    let n_layers = ((n + 1) as f32).log2().ceil() as usize + 1;
    size.max(n_layers) + n_layers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn construct_matches_reference_bit_for_bit(
        data in dataset_strategy(),
        size in 1usize..120,
        seed in 0u64..1_000,
    ) {
        let learner = Line::unit();
        let cfg = CoresetConfig { size };
        let fast = construct(
            &learner, &data, &cfg, &mut rand::rngs::StdRng::seed_from_u64(seed));
        let slow = reference::construct(
            &learner, &data, &cfg, &mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert_eq!(fast.samples(), slow.samples());
        prop_assert_eq!(fast.weights(), slow.weights());
    }

    #[test]
    fn reduce_matches_reference_bit_for_bit(
        data in dataset_strategy(),
        target in 1usize..80,
        seed in 0u64..1_000,
    ) {
        let c = Coreset::new(data.samples().to_vec(), data.weights().to_vec());
        let fast = reduce(c.clone(), target, &mut rand::rngs::StdRng::seed_from_u64(seed));
        let slow = reference::reduce(c, target, &mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert_eq!(fast.samples(), slow.samples());
        prop_assert_eq!(fast.weights(), slow.weights());
    }

    #[test]
    fn construct_preserves_total_weight(
        data in dataset_strategy(),
        size in 1usize..120,
        seed in 0u64..1_000,
    ) {
        let learner = Line::unit();
        let c = construct(
            &learner,
            &data,
            &CoresetConfig { size },
            &mut rand::rngs::StdRng::seed_from_u64(seed),
        );
        let total = data.weights().iter().sum::<f32>();
        let rel = (c.total_weight() - total).abs() / total;
        prop_assert!(rel < 1e-3, "total weight drifted by {} (n={} size={})", rel, data.len(), size);
    }

    #[test]
    fn construct_respects_size_bound(
        data in dataset_strategy(),
        size in 1usize..120,
        seed in 0u64..1_000,
    ) {
        let learner = Line::unit();
        let c = construct(
            &learner,
            &data,
            &CoresetConfig { size },
            &mut rand::rngs::StdRng::seed_from_u64(seed),
        );
        let n = data.len();
        prop_assert!(c.len() <= n, "coreset larger than the dataset");
        prop_assert!(
            c.len() <= size_bound(n, size),
            "len {} exceeds bound {} (n={} size={})",
            c.len(),
            size_bound(n, size),
            n,
            size
        );
    }

    #[test]
    fn construct_is_deterministic_under_fixed_seed_and_scratch_reuse(
        data in dataset_strategy(),
        size in 1usize..120,
        seed in 0u64..1_000,
    ) {
        let learner = Line::unit();
        let cfg = CoresetConfig { size };
        let fresh = construct(
            &learner, &data, &cfg, &mut rand::rngs::StdRng::seed_from_u64(seed));
        // A scratch dirtied by an unrelated call must not leak state.
        let mut scratch = CoresetScratch::new();
        let other = WeightedDataset::uniform(
            (0..57).map(|i| Pt(i as f32, -(i as f32))).collect());
        construct_with_scratch(
            &learner, &other, &CoresetConfig { size: 9 },
            &mut rand::rngs::StdRng::seed_from_u64(seed ^ 0xdead),
            &mut scratch,
        );
        let reused = construct_with_scratch(
            &learner, &data, &cfg,
            &mut rand::rngs::StdRng::seed_from_u64(seed), &mut scratch);
        prop_assert_eq!(fresh.samples(), reused.samples());
        prop_assert_eq!(fresh.weights(), reused.weights());
    }
}
