//! Golden-value regression tests: pinned fixtures prove the optimized
//! coreset path still produces the exact output it did when the fixtures
//! were recorded, and that valuation scores have not drifted.
//!
//! Fixtures live in `tests/fixtures/` and are committed. To regenerate
//! after an *intentional* output change, run
//! `LBCHAT_GOLDEN_WRITE=1 cargo test -p lbchat --test golden` and commit
//! the diff. Sample coordinates and weights are compared exactly (f32 →
//! f64 widening and the writer's shortest-round-trip formatting are both
//! lossless); scalar loss scores are compared within `1e-6` relative, the
//! documented tolerance for cross-platform `powf`/`exp` drift.

use lbchat::coreset::{construct, reference, CoresetConfig};
use lbchat::penalty::PenaltyConfig;
use lbchat::valuation::{coreset_loss, peer_model_value};
use lbchat::{Coreset, Learner, WeightedDataset};
use lbchat::obs::json::{parse, Json};
use rand::SeedableRng;
use std::path::PathBuf;
use vnn::ParamVec;

#[derive(Debug, Clone)]
struct Line(ParamVec);

#[derive(Debug, Clone, Copy, PartialEq)]
struct Pt(f32, f32);

impl Learner for Line {
    type Sample = Pt;
    fn params(&self) -> &ParamVec {
        &self.0
    }
    fn set_params(&mut self, p: ParamVec) {
        self.0 = p;
    }
    fn loss(&self, s: &Pt) -> f32 {
        self.loss_with(&self.0, s)
    }
    fn loss_with(&self, p: &ParamVec, s: &Pt) -> f32 {
        let w = p.as_slice();
        let r = w[0] * s.0 + w[1] - s.1;
        r * r
    }
    fn train_step(&mut self, _b: &[(&Pt, f32)]) -> f32 {
        0.0
    }
    fn group_of(&self, _s: &Pt) -> usize {
        0
    }
    fn n_groups(&self) -> usize {
        1
    }
}

/// The pinned input: 400 points on a noisy-ish deterministic curve with
/// non-uniform weights, enough loss spread to fill several layers.
fn golden_dataset() -> WeightedDataset<Pt> {
    let samples: Vec<Pt> = (0..400)
        .map(|i| {
            let x = i as f32 / 400.0;
            Pt(x, (x * 7.0).sin() * 0.5 + (i % 13) as f32 / 13.0)
        })
        .collect();
    let weights: Vec<f32> = (0..400).map(|i| 0.25 + ((i * 31) % 17) as f32 / 8.0).collect();
    WeightedDataset::new(samples, weights)
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn regenerate() -> bool {
    std::env::var_os("LBCHAT_GOLDEN_WRITE").is_some_and(|v| v == "1")
}

fn write_fixture(path: &PathBuf, v: &Json) {
    std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("create fixtures dir");
    let mut text = String::new();
    v.write(&mut text);
    text.push('\n');
    std::fs::write(path, text).expect("write fixture");
}

fn read_fixture(path: &PathBuf) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun `LBCHAT_GOLDEN_WRITE=1 cargo test -p lbchat --test golden` to record it",
            path.display()
        )
    });
    parse(&text).expect("fixture parses")
}

fn coreset_to_json(c: &Coreset<Pt>) -> Json {
    Json::Obj(vec![
        (
            "samples".into(),
            Json::Arr(
                c.samples()
                    .iter()
                    .map(|p| Json::Arr(vec![p.0.into(), p.1.into()]))
                    .collect(),
            ),
        ),
        (
            "weights".into(),
            Json::Arr(c.weights().iter().map(|&w| w.into()).collect()),
        ),
    ])
}

const REL_TOL: f64 = 1e-6;

fn assert_close(actual: f64, expected: f64, what: &str) {
    let scale = expected.abs().max(1e-12);
    assert!(
        ((actual - expected) / scale).abs() < REL_TOL,
        "{what}: {actual} != pinned {expected}"
    );
}

#[test]
fn coreset_construct_matches_golden_fixture() {
    let learner = Line(ParamVec::from_vec(vec![1.0, 0.0]));
    let data = golden_dataset();
    let cfg = CoresetConfig { size: 60 };
    let c = construct(&learner, &data, &cfg, &mut rand::rngs::StdRng::seed_from_u64(42));

    // The optimized path must also still agree with the pinned reference.
    let r = reference::construct(&learner, &data, &cfg, &mut rand::rngs::StdRng::seed_from_u64(42));
    assert_eq!(c.samples(), r.samples(), "optimized construct diverged from reference");
    assert_eq!(c.weights(), r.weights(), "optimized construct diverged from reference");

    let path = fixture_path("coreset_construct.json");
    let actual = coreset_to_json(&c);
    if regenerate() {
        write_fixture(&path, &actual);
        return;
    }
    let golden = read_fixture(&path);
    let g_samples = golden.get("samples").and_then(Json::as_arr).expect("samples array");
    let g_weights = golden.get("weights").and_then(Json::as_arr).expect("weights array");
    assert_eq!(c.len(), g_samples.len(), "coreset size changed");
    for (i, (p, g)) in c.samples().iter().zip(g_samples).enumerate() {
        let g = g.as_arr().expect("point array");
        // Selected samples are copied inputs: exact match required.
        assert_eq!(p.0 as f64, g[0].as_f64().unwrap(), "sample {i}.x changed");
        assert_eq!(p.1 as f64, g[1].as_f64().unwrap(), "sample {i}.y changed");
    }
    for (i, (&w, g)) in c.weights().iter().zip(g_weights).enumerate() {
        assert_close(w as f64, g.as_f64().unwrap(), &format!("weight {i}"));
    }
}

#[test]
fn valuation_scores_match_golden_fixture() {
    // Two models, two coresets, the four cross-losses and both directed
    // peer values — the exact quantities the chat protocol exchanges.
    let local = Line(ParamVec::from_vec(vec![2.0, -1.0]));
    let peer = Line(ParamVec::from_vec(vec![-1.5, 2.0]));
    let data = golden_dataset();
    let cfg = CoresetConfig { size: 80 };
    let c_local =
        construct(&local, &data, &cfg, &mut rand::rngs::StdRng::seed_from_u64(7));
    let c_peer =
        construct(&peer, &data, &cfg, &mut rand::rngs::StdRng::seed_from_u64(8));
    let pen = PenaltyConfig::none();

    let local_on_peer = coreset_loss(&local, local.params(), &c_peer, &pen);
    let peer_on_peer = coreset_loss(&peer, peer.params(), &c_peer, &pen);
    let peer_on_local = coreset_loss(&peer, peer.params(), &c_local, &pen);
    let local_on_local = coreset_loss(&local, local.params(), &c_local, &pen);
    let scores = [
        ("local_on_peer", local_on_peer),
        ("peer_on_peer", peer_on_peer),
        ("peer_on_local", peer_on_local),
        ("local_on_local", local_on_local),
        ("value_of_peer", peer_model_value(local_on_peer, peer_on_peer)),
        ("value_of_local", peer_model_value(peer_on_local, local_on_local)),
    ];

    let path = fixture_path("valuation_scores.json");
    let actual = Json::Obj(scores.iter().map(|&(k, v)| (k.to_string(), v.into())).collect());
    if regenerate() {
        write_fixture(&path, &actual);
        return;
    }
    let golden = read_fixture(&path);
    for (key, value) in scores {
        let pinned = golden.get(key).and_then(Json::as_f64).unwrap_or_else(|| {
            panic!("fixture missing `{key}`")
        });
        assert_close(value as f64, pinned, key);
    }
}
