//! Property tests for the pluggable model codecs (`lbchat::compress`):
//! the default top-k codec is bit-identical to the free functions the
//! paper path always used, lossy quantizers stay within one quantization
//! level of the top-k reference, stochastic rounding is a pure function of
//! the seed, `decode(encode(x))` reproduces `apply(x)` exactly for every
//! codec, and error feedback keeps banking the dropped mass even when the
//! residual is already dirty.

use lbchat::compress::{compress_dense, Codec};
use lbchat::prelude::ErrorFeedback;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vnn::ParamVec;

fn params_strategy() -> impl Strategy<Value = ParamVec> {
    prop::collection::vec(-10.0f32..10.0, 1..200).prop_map(ParamVec::from_vec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn topk_codec_is_bit_identical_to_the_free_path(
        params in params_strategy(),
        psi in (0u32..=20).prop_map(|p| p as f32 / 20.0),
        seed in 0u64..1 << 48,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let via_codec = Codec::TopK.apply(&params, psi, &mut rng);
        let via_free = compress_dense(&params, psi);
        prop_assert_eq!(via_codec.as_slice(), via_free.as_slice());
        // The default codec must not consume entropy: a fresh same-seed rng
        // still agrees with the one threaded through the codec.
        let mut fresh = StdRng::seed_from_u64(seed);
        let wire = Codec::TopK.encode(&params, psi, &mut rng);
        let wire2 = Codec::TopK.encode(&params, psi, &mut fresh);
        prop_assert_eq!(wire.as_bytes(), wire2.as_bytes());
    }

    #[test]
    fn quantizers_stay_within_one_level_of_topk(
        params in params_strategy(),
        psi in (0u32..=20).prop_map(|p| p as f32 / 20.0),
        seed in 0u64..1 << 48,
    ) {
        let reference = compress_dense(&params, psi);
        let max_abs = reference.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (codec, levels) in [
            (Codec::TopKQuantized, 127.0f32),
            (Codec::Int8, 127.0),
            (Codec::Int4, 7.0),
        ] {
            let scale = if max_abs > 0.0 { max_abs / levels } else { 1.0 };
            let mut rng = StdRng::seed_from_u64(seed);
            let decoded = codec.apply(&params, psi, &mut rng);
            for (d, r) in decoded.as_slice().iter().zip(reference.as_slice()) {
                prop_assert!(
                    (d - r).abs() <= scale * 1.0001,
                    "{codec}: |{d} - {r}| > one level ({scale})"
                );
                // Dropped coordinates stay dropped under every codec.
                if *r == 0.0 {
                    prop_assert_eq!(*d, 0.0);
                }
            }
        }
    }

    #[test]
    fn stochastic_rounding_is_a_function_of_the_seed(
        params in params_strategy(),
        psi in (0u32..=20).prop_map(|p| p as f32 / 20.0),
        seed in 0u64..1 << 48,
    ) {
        for codec in [Codec::TopKQuantized, Codec::Int8, Codec::Int4] {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let out_a = codec.apply(&params, psi, &mut a);
            let out_b = codec.apply(&params, psi, &mut b);
            prop_assert_eq!(out_a.as_slice(), out_b.as_slice(), "{} must be seed-pure", codec);
            let mut c = StdRng::seed_from_u64(seed);
            let wire = codec.encode(&params, psi, &mut c);
            let decoded = wire.decode().expect("own encode must decode");
            prop_assert_eq!(
                decoded.as_slice(),
                out_a.as_slice(),
                "{} wire bytes must carry the same rounding decisions",
                codec
            );
        }
    }

    #[test]
    fn decode_of_encode_reproduces_apply_for_every_codec(
        params in params_strategy(),
        psi in (0u32..=20).prop_map(|p| p as f32 / 20.0),
        seed in 0u64..1 << 48,
    ) {
        for codec in Codec::ALL {
            let mut enc_rng = StdRng::seed_from_u64(seed);
            let mut app_rng = StdRng::seed_from_u64(seed);
            let wire = codec.encode(&params, psi, &mut enc_rng);
            prop_assert_eq!(wire.codec(), Ok(codec));
            prop_assert_eq!(
                wire.len(),
                codec.encoded_wire_bytes(params.len(), psi),
                "{} must declare its exact encoded size",
                codec
            );
            let decoded = wire.decode().expect("own encode must decode");
            let applied = codec.apply(&params, psi, &mut app_rng);
            prop_assert_eq!(
                decoded.as_slice(),
                applied.as_slice(),
                "{}: receiver and sender views must match bit for bit",
                codec
            );
        }
    }

    #[test]
    fn error_feedback_banks_dropped_mass_even_with_a_dirty_residual(
        params in params_strategy(),
        delta in prop::collection::vec(-1.0f32..1.0, 1..200),
        psi in (1u32..=20).prop_map(|p| p as f32 / 20.0),
        seed in 0u64..1 << 48,
    ) {
        let mut ef = ErrorFeedback::new();
        let mut rng = StdRng::seed_from_u64(seed);
        // Round 1 dirties the residual.
        let _ = ef.apply(7, Codec::Int4, &params, psi, &mut rng);
        // Round 2 with a drifted model: the codec input must be
        // params2 + residual1 and the new residual exactly input − output.
        let mut params2 = params.clone();
        for (p, d) in params2.as_mut_slice().iter_mut().zip(&delta) {
            *p += d;
        }
        let input = ef.compensated(7, &params2);
        let out = ef.apply(7, Codec::Int4, &params2, psi, &mut rng);
        let res = ef.residual(7).expect("residual banked");
        prop_assert_eq!(res.len(), params2.len());
        for ((r, i), o) in res.as_slice().iter().zip(input.as_slice()).zip(out.as_slice()) {
            prop_assert!(
                (r - (i - o)).abs() <= f32::EPSILON * 16.0 * i.abs().max(1.0),
                "residual must equal input − output: {r} vs {} - {o}",
                i
            );
        }
    }
}
