//! Worker-count invariance of the contention-mode event runtime.
//!
//! Contended sessions shard their airtime windows over the
//! [`lbchat::exec`] pool, but every window job owns its RNG and its
//! inputs are frozen before the parallel phase, so a serial run and a
//! 4-worker run must be byte-identical — metrics, counters, and the full
//! ordered event stream. A single `#[test]` because
//! [`lbchat::exec::set_jobs`] is process-global; two tests toggling it
//! concurrently would race.

use lbchat::exec;
use lbchat::prelude::*;
use rand::RngExt as _;
use simnet::geom::Vec2;
use simnet::loss::LossModel;
use simnet::trace::MobilityTrace;
use vnn::ParamVec;

struct Streamer {
    n: usize,
    params: ParamVec,
}

impl CollabAlgorithm for Streamer {
    type Sample = ();
    type Session = u32;

    fn n_nodes(&self) -> usize {
        self.n
    }

    fn model(&self, _node: usize) -> &ParamVec {
        &self.params
    }

    fn local_training(
        &mut self,
        _node: usize,
        _iters: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> TrainStats {
        let _: f32 = rng.random();
        TrainStats::default()
    }

    fn session_open(&mut self, ctx: &mut SessionCtx<'_>) -> Option<(u32, SessionStep)> {
        let bytes = 400_000 + (ctx.rng().random::<f32>() * 800_000.0) as usize;
        Some((0, SessionStep::Transfer(TransferSpec::link(bytes, 1e9))))
    }

    fn session_step(
        &mut self,
        sent: &mut u32,
        out: TransferOutcome,
        ctx: &mut SessionCtx<'_>,
    ) -> SessionStep {
        *sent += 1;
        ctx.metrics.record_coreset_send(out.is_delivered(), 100_000, out.elapsed());
        if !out.is_delivered() || *sent >= 3 {
            return SessionStep::Done;
        }
        let bytes = 200_000 + (ctx.rng().random::<f32>() * 400_000.0) as usize;
        SessionStep::Transfer(TransferSpec::link(bytes, 1e9))
    }

    fn session_close(&mut self, _sent: u32, ctx: &mut SessionCtx<'_>) -> f64 {
        ctx.elapsed()
    }

    fn mean_eval_loss(&self, _eval: &[()]) -> f64 {
        1.0
    }

    fn name(&self) -> &'static str {
        "streamer"
    }
}

/// Eight vehicles parked in one cell: up to four sessions contend in
/// every airtime window, so the parallel shard path actually runs.
fn run_once() -> (Metrics, Vec<String>, std::collections::BTreeMap<String, u64>) {
    let fps = 2.0;
    let duration = 25.0;
    let frames = (duration * fps) as usize + 1;
    let positions = (0..8)
        .map(|k| vec![Vec2::new(k as f32 * 60.0, 0.0); frames])
        .collect();
    let trace = MobilityTrace::new(fps, positions);
    let sink = ObsSink::recording();
    let rt = Runtime::new(RuntimeConfig {
        duration,
        eval_every: 10.0,
        pair_cooldown: 2.0,
        loss_model: LossModel::distance_default(),
        seed: 21,
        contention: Some(MediumConfig::default()),
        obs: sink.clone(),
        ..RuntimeConfig::default()
    });
    let mut algo = Streamer { n: 8, params: ParamVec::zeros(1) };
    let m = rt.run(&mut algo, &trace, &[]).expect("trace fits");
    let lines = sink.events().iter().map(lbchat::obs::Event::canonical).collect();
    (m, lines, sink.counters())
}

#[test]
fn contention_results_are_bit_identical_for_any_job_count() {
    exec::set_jobs(1);
    let (m1, ev1, c1) = run_once();
    exec::set_jobs(4);
    let (m4, ev4, c4) = run_once();
    exec::set_jobs(1);

    assert!(m1.sessions > 0, "the cluster must produce sessions");
    assert!(
        c1.get("net.contention.drops").copied().unwrap_or(0) > 0,
        "the scenario must actually contend"
    );
    for ((ta, la), (tb, lb)) in m1.loss_curve.iter().zip(&m4.loss_curve) {
        assert_eq!(ta.to_bits(), tb.to_bits());
        assert_eq!(la.to_bits(), lb.to_bits());
    }
    assert_eq!(m1.loss_curve.len(), m4.loss_curve.len());
    assert_eq!(m1.sessions, m4.sessions);
    assert_eq!(m1.coreset_sends, m4.coreset_sends);
    assert_eq!(m1.coreset_receives, m4.coreset_receives);
    assert_eq!(m1.bytes_delivered, m4.bytes_delivered);
    assert_eq!(m1.comm_seconds.to_bits(), m4.comm_seconds.to_bits());
    assert_eq!(m1.train_iterations, m4.train_iterations);
    // The full ordered event stream — not just sorted content — must
    // match: the fixed-order reduction makes emission order independent
    // of which worker streamed which window.
    assert_eq!(ev1, ev4, "event order must not depend on --jobs");
    assert_eq!(c1, c4, "counters must not depend on --jobs");
}
