//! Golden event-order fixture for the contention-mode event runtime, plus
//! a saturation check on the shared medium.
//!
//! The fixture pins the exact emission order and payload of every
//! deterministic runtime event (`session.open`, `transfer`,
//! `session.close`, `session`, `round`) for a small contention-enabled
//! scenario: four clustered vehicles whose streaming transfers span
//! several airtime windows. Any change to the scheduler's tie-breaking,
//! the windowed streaming, or the session lifecycle shows up as a diff.
//!
//! To regenerate after an *intentional* behavior change, run
//! `LBCHAT_GOLDEN_WRITE=1 cargo test -p lbchat --test event_golden` and
//! commit the diff.

use lbchat::prelude::*;
use rand::RngExt as _;
use simnet::geom::Vec2;
use simnet::loss::LossModel;
use simnet::trace::MobilityTrace;
use std::path::PathBuf;
use vnn::ParamVec;

/// A probe whose sessions stream two multi-window payloads. The open draw
/// ties the fixture to the per-session RNG seeding as well.
struct Streamer {
    n: usize,
    params: ParamVec,
    /// Bytes of the first payload; the second is half as large.
    bytes: usize,
    /// Keep requesting payloads until the session is force-closed (for
    /// the saturation test); `false` stops after two.
    greedy: bool,
}

struct StreamerSession {
    sent: u32,
}

impl CollabAlgorithm for Streamer {
    type Sample = ();
    type Session = StreamerSession;

    fn n_nodes(&self) -> usize {
        self.n
    }

    fn model(&self, _node: usize) -> &ParamVec {
        &self.params
    }

    fn local_training(
        &mut self,
        _node: usize,
        _iters: usize,
        _rng: &mut rand::rngs::StdRng,
    ) -> TrainStats {
        TrainStats::default()
    }

    fn session_open(&mut self, ctx: &mut SessionCtx<'_>) -> Option<(StreamerSession, SessionStep)> {
        let _: f32 = ctx.rng().random();
        Some((
            StreamerSession { sent: 0 },
            SessionStep::Transfer(TransferSpec::link(self.bytes, 1e9)),
        ))
    }

    fn session_step(
        &mut self,
        state: &mut StreamerSession,
        out: TransferOutcome,
        ctx: &mut SessionCtx<'_>,
    ) -> SessionStep {
        state.sent += 1;
        ctx.metrics.record_coreset_send(out.is_delivered(), self.bytes, out.elapsed());
        if !out.is_delivered() {
            return SessionStep::Done;
        }
        if self.greedy {
            return SessionStep::Transfer(TransferSpec::link(self.bytes, 1e9));
        }
        if state.sent >= 2 {
            return SessionStep::Done;
        }
        SessionStep::Transfer(TransferSpec::link(self.bytes / 2, 1e9))
    }

    fn session_close(&mut self, _state: StreamerSession, ctx: &mut SessionCtx<'_>) -> f64 {
        ctx.elapsed()
    }

    fn mean_eval_loss(&self, _eval: &[()]) -> f64 {
        1.0
    }

    fn name(&self) -> &'static str {
        "streamer"
    }
}

fn parked_trace(positions: &[Vec2], duration: f64) -> MobilityTrace {
    let fps = 2.0;
    let frames = (duration * fps) as usize + 1;
    MobilityTrace::new(fps, positions.iter().map(|&p| vec![p; frames]).collect())
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn regenerate() -> bool {
    std::env::var_os("LBCHAT_GOLDEN_WRITE").is_some_and(|v| v == "1")
}

#[test]
fn contention_event_order_matches_golden_fixture() {
    // Four vehicles parked in one radio cell: two concurrent sessions
    // contend for airtime every frame the matcher can pair them.
    let cluster: Vec<Vec2> = (0..4).map(|k| Vec2::new(k as f32 * 120.0, 0.0)).collect();
    let trace = parked_trace(&cluster, 30.0);
    let sink = ObsSink::recording();
    let rt = Runtime::new(RuntimeConfig {
        duration: 30.0,
        eval_every: 10.0,
        pair_cooldown: 5.0,
        loss_model: LossModel::distance_default(),
        seed: 11,
        contention: Some(MediumConfig::default()),
        obs: sink.clone(),
        ..RuntimeConfig::default()
    });
    let mut algo = Streamer { n: 4, params: ParamVec::zeros(1), bytes: 1_200_000, greedy: false };
    let m = rt.run(&mut algo, &trace, &[]).expect("trace fits");
    assert!(m.sessions > 0, "the cluster must produce sessions");

    // Every runtime event minus wall-clock fields, in emission order: the
    // deterministic event schedule itself.
    let lines: Vec<String> = sink.events().iter().map(lbchat::obs::Event::canonical).collect();
    assert!(
        lines.iter().any(|l| l.contains("\"kind\":\"session.open\"")),
        "contention mode must emit lifecycle events"
    );

    let path = fixture_path("event_order.txt");
    let actual = lines.join("\n") + "\n";
    if regenerate() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("create fixtures dir");
        std::fs::write(&path, &actual).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun `LBCHAT_GOLDEN_WRITE=1 cargo test -p lbchat --test event_golden` to record it",
            path.display()
        )
    });
    for (n, (a, g)) in actual.lines().zip(golden.lines()).enumerate() {
        assert_eq!(a, g, "event {} diverged from the golden order", n + 1);
    }
    assert_eq!(
        actual.lines().count(),
        golden.lines().count(),
        "event count diverged from the golden order"
    );
}

/// Total delivered bytes with `pairs` isolated pairs all contending in one
/// medium cell, offered unbounded load for 20 simulated seconds.
fn delivered_with_pairs(pairs: usize) -> u64 {
    let mut positions = Vec::new();
    for p in 0..pairs {
        // Pairs 1.5 km apart: only partners are in radio range, but one
        // huge medium cell makes every pair contend for the same airtime.
        positions.push(Vec2::new(p as f32 * 1500.0, 0.0));
        positions.push(Vec2::new(p as f32 * 1500.0 + 100.0, 0.0));
    }
    let trace = parked_trace(&positions, 20.0);
    let sink = ObsSink::recording();
    let rt = Runtime::new(RuntimeConfig {
        duration: 20.0,
        eval_every: 20.0,
        pair_cooldown: 0.0,
        seed: 3,
        contention: Some(MediumConfig { cell_m: 100_000.0, ..MediumConfig::default() }),
        obs: sink.clone(),
        ..RuntimeConfig::default()
    });
    let mut algo = Streamer {
        n: positions.len(),
        params: ParamVec::zeros(1),
        bytes: 2_000_000,
        greedy: true,
    };
    rt.run(&mut algo, &trace, &[]).expect("trace fits");
    if pairs > 1 {
        assert!(
            sink.counters().get("net.contention.drops").copied().unwrap_or(0) > 0,
            "contending pairs must suffer collision drops"
        );
    }
    sink.counters().get("bytes_delivered").copied().unwrap_or(0)
}

#[test]
fn shared_medium_saturates_under_offered_load() {
    let b1 = delivered_with_pairs(1);
    let b4 = delivered_with_pairs(4);
    let b8 = delivered_with_pairs(8);
    assert!(b1 > 0, "a lone pair must move payload");
    // Airtime is shared: total goodput must not scale with offered load…
    assert!(
        b8 < b1 * 2,
        "8 contending pairs must not outrun 2x a lone pair: {b8} vs {b1}"
    );
    // …so per-pair goodput collapses as the cell saturates.
    assert!(
        b8 / 8 < b1 / 2,
        "per-pair goodput must collapse under saturation: {} vs {}",
        b8 / 8,
        b1 / 2
    );
    assert!(
        b8 <= b4 + b4 / 2,
        "goodput past saturation must stay flat-ish: {b8} vs {b4}"
    );
}
