//! Golden wire-format fixtures: one committed encoded [`WireModel`] per
//! codec, proving the byte layouts documented in `docs/COMPRESSION.md`
//! never drift silently. The pinned input, ψ, and rng seed are fixed, so
//! every codec — including the stochastic quantizers — is deterministic.
//!
//! To regenerate after an *intentional* wire-format change, run
//! `LBCHAT_GOLDEN_WRITE=1 cargo test -p lbchat --test wire_golden`, commit
//! the diff, and update `docs/COMPRESSION.md` to match.

use lbchat::compress::Codec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use vnn::ParamVec;

const FIXTURE: &str = "wire_models.txt";
const GOLDEN_PSI: f32 = 0.3;
const GOLDEN_SEED: u64 = 7;

/// The pinned input: 37 values (an odd, non-chunk-aligned length so the
/// int4 nibble padding and the sketch's short tail chunk are exercised)
/// with sign structure and enough magnitude spread for distinct top-k
/// survivors.
fn golden_params() -> ParamVec {
    let data: Vec<f32> = (0..37)
        .map(|i| {
            let x = i as f32;
            (x * 0.7).sin() * (1.0 + x / 10.0) * if i % 3 == 0 { -1.0 } else { 1.0 }
        })
        .collect();
    ParamVec::from_vec(data)
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(FIXTURE)
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn encode_all() -> Vec<(&'static str, Vec<u8>)> {
    let params = golden_params();
    Codec::ALL
        .into_iter()
        .map(|codec| {
            let mut rng = StdRng::seed_from_u64(GOLDEN_SEED);
            let wire = codec.encode(&params, GOLDEN_PSI, &mut rng);
            (codec.name(), wire.as_bytes().to_vec())
        })
        .collect()
}

#[test]
fn every_codec_matches_its_pinned_wire_bytes() {
    let encoded = encode_all();
    let path = fixture_path();
    if std::env::var_os("LBCHAT_GOLDEN_WRITE").is_some_and(|v| v == "1") {
        let mut text = String::new();
        for (name, bytes) in &encoded {
            text.push_str(&format!("{name} {}\n", hex(bytes)));
        }
        std::fs::write(&path, text).expect("write wire fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path)
        .expect("missing tests/fixtures/wire_models.txt — regenerate with LBCHAT_GOLDEN_WRITE=1");
    let pinned: Vec<(&str, &str)> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split_once(' ').expect("fixture line is `name hex`"))
        .collect();
    assert_eq!(
        pinned.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
        encoded.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
        "fixture must pin every codec in Codec::ALL order"
    );
    for ((name, want_hex), (_, got)) in pinned.iter().zip(&encoded) {
        assert_eq!(
            hex(got),
            *want_hex,
            "{name}: encoded bytes drifted from the pinned wire format \
             (docs/COMPRESSION.md); if intentional, regenerate with \
             LBCHAT_GOLDEN_WRITE=1 and update the docs"
        );
    }
}

#[test]
fn pinned_buffers_still_decode_to_the_apply_output() {
    let params = golden_params();
    for (codec, (_, bytes)) in Codec::ALL.into_iter().zip(encode_all()) {
        let wire = lbchat::prelude::WireModel::from_bytes(bytes);
        let mut rng = StdRng::seed_from_u64(GOLDEN_SEED);
        assert_eq!(
            wire.decode().expect("pinned buffer decodes").as_slice(),
            codec.apply(&params, GOLDEN_PSI, &mut rng).as_slice(),
            "{codec}: decode must reproduce apply bit for bit"
        );
    }
}
