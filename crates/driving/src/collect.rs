//! Per-vehicle dataset collection (§IV-A: "vehicles collect data at two
//! frames per second ... we run the vehicles for one hour to collect the
//! local datasets for training").
//!
//! Each expert keeps only what its own route showed it, so local datasets
//! are naturally *route-conditioned*: a vehicle looping the rural ring sees
//! almost no turns or pedestrians, a downtown vehicle sees plenty. This
//! per-vehicle skew is precisely what coreset exchange measures and
//! exploits.

use crate::frame::Frame;
use lbchat::exec;
use lbchat::WeightedDataset;
use simworld::expert::Command;
use simworld::world::World;

/// Data-collection parameters.
#[derive(Debug, Clone)]
pub struct CollectConfig {
    /// Simulated seconds of driving to record (paper: 3600).
    pub seconds: f64,
    /// Keep every `stride`-th frame (1 = the paper's every-frame capture;
    /// larger strides decorrelate samples in fast runs).
    pub stride: usize,
    /// Balance command classes via the sample weights `w(d)`: turn frames
    /// are rare (a turn lasts a few seconds) but safety-critical, so they
    /// get a higher original weight. This is exactly the non-uniform-w(d)
    /// generality the paper's Algorithm 1 supports.
    pub balance_commands: bool,
}

impl Default for CollectConfig {
    fn default() -> Self {
        Self { seconds: 3600.0, stride: 1, balance_commands: true }
    }
}

/// The original weight `w(d)` of a frame by its command class and
/// turn proximity: the few frames where the expert actually bends into the
/// corner (small normalized turn distance) carry the safety-critical
/// steering signal and get boosted hardest.
pub fn command_weight(command: Command, turn_distance_norm: f32) -> f32 {
    let base = match command {
        Command::Follow => 1.0,
        Command::Straight => 1.5,
        Command::Left | Command::Right => 3.0,
    };
    let proximity = (0.15 - turn_distance_norm).max(0.0) / 0.15; // 0..1
    base + 8.0 * proximity
}

/// Runs `world` for `cfg.seconds`, recording every expert's observations.
/// Returns one weighted dataset per expert vehicle.
///
/// Observation (BEV rasterization + supervision) dominates collection cost
/// and reads the world immutably, so each frame fans the per-vehicle
/// observations out over the [`lbchat::exec`] worker pool; world stepping
/// stays serial. The output is identical for any `LBCHAT_JOBS` setting.
pub fn collect_datasets(world: &mut World, cfg: &CollectConfig) -> Vec<WeightedDataset<Frame>> {
    let n = world.n_experts();
    let pool = world.config().bev.pool;
    let frames = (cfg.seconds * world.config().fps).ceil() as usize;
    let mut per_vehicle: Vec<Vec<Frame>> = vec![Vec::new(); n];
    for f in 0..frames {
        if f % cfg.stride.max(1) == 0 {
            let observed = exec::par_run(n, |v| {
                let (bev, sup) = world.observe_expert(v);
                Frame::from_observation(&bev, &sup, pool)
            });
            for (bucket, frame) in per_vehicle.iter_mut().zip(observed) {
                bucket.push(frame);
            }
        }
        world.step();
    }
    per_vehicle
        .into_iter()
        .map(|frames| {
            if cfg.balance_commands {
                let weights = frames
                    .iter()
                    .map(|f| {
                        let turn_d = f.features[f.features.len() - 2];
                        command_weight(f.command, turn_d)
                    })
                    .collect();
                WeightedDataset::new(frames, weights)
            } else {
                WeightedDataset::uniform(frames)
            }
        })
        .collect()
}

/// Pools a held-out evaluation set by sampling every vehicle's later frames
/// round-robin — a global view of the joint data distribution for the
/// Fig. 2/3 loss curves.
pub fn eval_set(datasets: &[WeightedDataset<Frame>], per_vehicle: usize) -> Vec<Frame> {
    let mut out = Vec::new();
    for d in datasets {
        let n = d.len();
        if n == 0 {
            continue;
        }
        let take = per_vehicle.min(n);
        let stride = (n / take).max(1);
        for k in 0..take {
            out.push(d.sample((k * stride).min(n - 1)).clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simworld::world::WorldConfig;

    #[test]
    fn collection_yields_per_vehicle_datasets() {
        let mut w = World::new(WorldConfig::small(5));
        let ds = collect_datasets(&mut w, &CollectConfig { seconds: 30.0, stride: 1, balance_commands: true });
        assert_eq!(ds.len(), 8);
        for d in &ds {
            assert_eq!(d.len(), 60, "30 s at 2 fps");
        }
    }

    #[test]
    fn stride_thins_the_data() {
        let mut w = World::new(WorldConfig::small(5));
        let ds = collect_datasets(&mut w, &CollectConfig { seconds: 30.0, stride: 3, balance_commands: true });
        assert_eq!(ds[0].len(), 20);
    }

    #[test]
    fn datasets_differ_across_vehicles() {
        let mut w = World::new(WorldConfig::small(6));
        let ds = collect_datasets(&mut w, &CollectConfig { seconds: 20.0, stride: 1, balance_commands: true });
        // Different routes ⇒ different features.
        assert_ne!(ds[0].sample(0).features, ds[1].sample(0).features);
    }

    #[test]
    fn eval_set_draws_from_everyone() {
        let mut w = World::new(WorldConfig::small(7));
        let ds = collect_datasets(&mut w, &CollectConfig { seconds: 20.0, stride: 1, balance_commands: true });
        let eval = eval_set(&ds, 5);
        assert_eq!(eval.len(), 5 * 8);
    }
}
