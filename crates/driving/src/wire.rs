//! Wire serialization of driving frames and coresets.
//!
//! The simulated radio charges airtime for coreset transfers using a
//! configurable bytes-per-sample figure; this module grounds that figure in
//! an actual encoding: frames serialize to a compact binary layout
//! (features as little-endian `f32`, command byte, waypoints), and a simple
//! run-length scheme exploits the BEV features' sparsity (most pooled cells
//! are empty road-free space).

use crate::frame::Frame;
use simworld::expert::Command;
use vnn::wire::{WireError, WireReader};

/// Magic byte prefixed to every encoded frame (format versioning).
const FRAME_MAGIC: u8 = 0xF7;

/// Encodes a frame: `[magic, command, n_feat u16, n_wp u16, features.., waypoints..]`.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + 4 * (frame.features.len() + frame.waypoints.len()));
    out.push(FRAME_MAGIC);
    out.push(frame.command.index() as u8);
    out.extend_from_slice(&(frame.features.len() as u16).to_le_bytes());
    out.extend_from_slice(&(frame.waypoints.len() as u16).to_le_bytes());
    for v in &frame.features {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for v in &frame.waypoints {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a frame produced by [`encode_frame`].
///
/// # Errors
/// A [`WireError`] naming the structural mismatch: bad magic, short
/// buffer, unknown command, or a length disagreeing with the header.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, WireError> {
    if bytes.len() < 6 {
        return Err(WireError::BadLength {
            got: bytes.len(),
            expected: "at least the 6-byte frame header",
        });
    }
    let mut r = WireReader::new(bytes);
    let magic = r.u8()?;
    if magic != FRAME_MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    let cmd_idx = r.u8()? as usize;
    if cmd_idx >= Command::COUNT {
        return Err(WireError::BadValue { field: "command", got: cmd_idx as u32 });
    }
    let n_feat = r.u16()? as usize;
    let n_wp = r.u16()? as usize;
    let read_f32s = |r: &mut WireReader, n: usize| -> Result<Vec<f32>, WireError> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(r.f32()?);
        }
        Ok(v)
    };
    let features = read_f32s(&mut r, n_feat)?;
    let waypoints = read_f32s(&mut r, n_wp)?;
    r.finish()?;
    Ok(Frame { features, command: Command::from_index(cmd_idx), waypoints })
}

/// Encodes a frame with zero-run compression on the features: runs of
/// zero features (empty BEV cells) collapse to `[0xFF, run_len u8]`. The
/// paper's "0.6 MB with simple lossless compression" for 150 frames is this
/// class of encoding.
pub fn encode_frame_compressed(frame: &Frame) -> Vec<u8> {
    let mut out = vec![FRAME_MAGIC ^ 1, frame.command.index() as u8];
    out.extend_from_slice(&(frame.features.len() as u16).to_le_bytes());
    out.extend_from_slice(&(frame.waypoints.len() as u16).to_le_bytes());
    let mut i = 0;
    let f = &frame.features;
    while i < f.len() {
        if f[i] == 0.0 {
            let mut run = 1usize;
            while i + run < f.len() && f[i + run] == 0.0 && run < 255 {
                run += 1;
            }
            out.push(0xFF);
            out.push(run as u8);
            i += run;
        } else {
            // Literal marker + value.
            out.push(0x00);
            out.extend_from_slice(&f[i].to_le_bytes());
            i += 1;
        }
    }
    for v in &frame.waypoints {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes [`encode_frame_compressed`] output.
///
/// # Errors
/// A [`WireError`] naming the structural mismatch: bad magic, unknown
/// command or run marker, truncation mid-record, or trailing bytes.
pub fn decode_frame_compressed(bytes: &[u8]) -> Result<Frame, WireError> {
    if bytes.len() < 6 {
        return Err(WireError::BadLength {
            got: bytes.len(),
            expected: "at least the 6-byte frame header",
        });
    }
    let mut r = WireReader::new(bytes);
    let magic = r.u8()?;
    if magic != (FRAME_MAGIC ^ 1) {
        return Err(WireError::BadMagic { got: magic });
    }
    let cmd_idx = r.u8()? as usize;
    if cmd_idx >= Command::COUNT {
        return Err(WireError::BadValue { field: "command", got: cmd_idx as u32 });
    }
    let n_feat = r.u16()? as usize;
    let n_wp = r.u16()? as usize;
    let mut features = Vec::with_capacity(n_feat);
    while features.len() < n_feat {
        let marker = r.u8()?;
        if marker == 0xFF {
            let run = r.u8()? as usize;
            features.resize(features.len() + run, 0.0);
        } else if marker == 0x00 {
            features.push(r.f32()?);
        } else {
            return Err(WireError::BadValue { field: "run marker", got: u32::from(marker) });
        }
    }
    if features.len() != n_feat {
        // A zero run overshot the declared feature count.
        return Err(WireError::BadValue {
            field: "zero-run length",
            got: features.len() as u32,
        });
    }
    let mut waypoints = Vec::with_capacity(n_wp);
    for _ in 0..n_wp {
        waypoints.push(r.f32()?);
    }
    r.finish()?;
    Ok(Frame { features, command: Command::from_index(cmd_idx), waypoints })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Frame {
        let mut features = vec![0.0f32; 80];
        features[3] = 0.25;
        features[40] = 1.0;
        features[79] = 0.5;
        Frame {
            features,
            command: Command::Left,
            waypoints: vec![2.5, 0.1, 5.0, -0.4],
        }
    }

    #[test]
    fn dense_roundtrip() {
        let f = sample_frame();
        let bytes = encode_frame(&f);
        assert_eq!(decode_frame(&bytes).unwrap(), f);
    }

    #[test]
    fn compressed_roundtrip() {
        let f = sample_frame();
        let bytes = encode_frame_compressed(&f);
        assert_eq!(decode_frame_compressed(&bytes).unwrap(), f);
    }

    #[test]
    fn compression_shrinks_sparse_frames() {
        let f = sample_frame();
        let dense = encode_frame(&f).len();
        let compressed = encode_frame_compressed(&f).len();
        assert!(
            compressed < dense / 3,
            "sparse BEV features must compress well: {compressed} vs {dense}"
        );
    }

    #[test]
    fn rejects_corrupt_input() {
        let f = sample_frame();
        let mut bytes = encode_frame(&f);
        bytes[0] ^= 0xAA; // bad magic
        assert_eq!(
            decode_frame(&bytes),
            Err(WireError::BadMagic { got: FRAME_MAGIC ^ 0xAA })
        );
        let bytes = encode_frame(&f);
        assert_eq!(decode_frame(&bytes[..bytes.len() - 1]), Err(WireError::Truncated));
        let mut bytes = encode_frame(&f);
        bytes[1] = 9; // bad command
        assert_eq!(
            decode_frame(&bytes),
            Err(WireError::BadValue { field: "command", got: 9 })
        );
        assert!(matches!(
            decode_frame(&[FRAME_MAGIC, 0, 1]),
            Err(WireError::BadLength { got: 3, .. })
        ));
        let mut bytes = encode_frame(&f);
        bytes.push(0);
        assert_eq!(decode_frame(&bytes), Err(WireError::Trailing { extra: 1 }));
    }

    #[test]
    fn rejects_corrupt_compressed_input() {
        let f = sample_frame();
        let mut bytes = encode_frame_compressed(&f);
        bytes[6] = 0x7E; // invalid marker
        assert_eq!(
            decode_frame_compressed(&bytes),
            Err(WireError::BadValue { field: "run marker", got: 0x7E })
        );
        let bytes = encode_frame_compressed(&f);
        assert_eq!(
            decode_frame_compressed(&bytes[..bytes.len() - 2]),
            Err(WireError::Truncated)
        );
        let mut bytes = encode_frame_compressed(&f);
        bytes.push(0);
        assert_eq!(
            decode_frame_compressed(&bytes),
            Err(WireError::Trailing { extra: 1 })
        );
        let mut bytes = encode_frame_compressed(&f);
        bytes[0] = 0x33;
        assert_eq!(
            decode_frame_compressed(&bytes),
            Err(WireError::BadMagic { got: 0x33 })
        );
    }

    #[test]
    fn dense_frames_do_not_explode() {
        // All-nonzero features: compressed encoding is bounded by 5/4 of
        // dense (1 marker byte per 4-byte literal).
        let f = Frame {
            features: vec![0.5; 64],
            command: Command::Follow,
            waypoints: vec![1.0; 8],
        };
        let dense = encode_frame(&f).len();
        let compressed = encode_frame_compressed(&f).len();
        assert!(compressed <= dense + 64);
    }
}
