//! Closed-loop driving evaluation — the success-rate metric behind Tables
//! II–VII.
//!
//! A trained policy is deployed on a free-moving test vehicle that must
//! navigate predefined routes: the policy sees the live BEV + command,
//! predicts waypoints, and a low-level pure-pursuit controller tracks them.
//! "We consider a trial on a given route successful if the testing autopilot
//! can safely reach the destination within a budget time without colliding
//! with other cars or pedestrians."

use crate::learner::DrivingLearner;
use lbchat::exec;
use lbchat::obs::ObsSink;
use lbchat::ConfigError;
use rand::SeedableRng;
use simnet::geom::Vec2;
use simworld::agents::FreeVehicle;
use simworld::bev::{rasterize_into, Bev, Pose};
use simworld::expert::Command;
use simworld::map::RoadNetwork;
use simworld::route::{classify_turn, Route, TurnKind};
use simworld::world::{World, WorldConfig};
use vnn::TrainScratch;

/// The CARLA-benchmark-style task suite (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Drive a straight route, empty roads.
    Straight,
    /// A route with exactly one turn, empty roads.
    OneTurn,
    /// Full navigation with multiple turns, empty roads.
    NaviEmpty,
    /// Full navigation with normal traffic (50 cars, 250 pedestrians).
    NaviNormal,
    /// Full navigation with 1.2× the normal traffic.
    NaviDense,
}

impl Task {
    /// All five tasks in table order.
    pub const ALL: [Task; 5] =
        [Task::Straight, Task::OneTurn, Task::NaviEmpty, Task::NaviNormal, Task::NaviDense];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Task::Straight => "Straight",
            Task::OneTurn => "One Turn",
            Task::NaviEmpty => "Navi. (Empty)",
            Task::NaviNormal => "Navi. (Normal)",
            Task::NaviDense => "Navi. (Dense)",
        }
    }

    /// Background traffic (cars, pedestrians) for the task, scaled from the
    /// paper's 50/250 by `scale` (1.0 = paper scale).
    pub fn traffic(self, scale: f64) -> (usize, usize) {
        let base = |c: f64, p: f64| ((c * scale) as usize, (p * scale) as usize);
        match self {
            Task::Straight | Task::OneTurn | Task::NaviEmpty => (0, 0),
            Task::NaviNormal => base(50.0, 250.0),
            Task::NaviDense => base(60.0, 300.0), // 1.2×
        }
    }
}

/// Evaluation parameters.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Trials (routes) per task.
    pub trials: usize,
    /// World seed for the evaluation environment.
    pub world_seed: u64,
    /// Route-draw seed (fixed across methods so every method faces the same
    /// routes).
    pub route_seed: u64,
    /// Traffic scale relative to the paper's counts.
    pub traffic_scale: f64,
    /// Allowed time per meter of route (the "budget time"); generous enough
    /// that only genuinely lost vehicles time out.
    pub seconds_per_meter: f64,
    /// Success radius around the destination, meters.
    pub arrival_radius: f32,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            trials: 25,
            world_seed: 1000,
            route_seed: 2000,
            traffic_scale: 1.0,
            seconds_per_meter: 0.45,
            arrival_radius: 12.0,
        }
    }
}

impl EvalConfig {
    /// Starts a validating builder from the defaults.
    pub fn builder() -> EvalConfigBuilder {
        EvalConfigBuilder { cfg: Self::default() }
    }

    /// Checks every field against its domain. Struct-literal construction
    /// stays possible for tests; the builder calls this on
    /// [`EvalConfigBuilder::build`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        ConfigError::require_nonzero("trials", self.trials)?;
        ConfigError::require_non_negative("traffic_scale", self.traffic_scale)?;
        ConfigError::require_positive("seconds_per_meter", self.seconds_per_meter)?;
        ConfigError::require_positive("arrival_radius", self.arrival_radius as f64)?;
        Ok(())
    }
}

/// Validating builder for [`EvalConfig`].
///
/// ```
/// use driving::EvalConfig;
/// let cfg = EvalConfig::builder().trials(8).route_seed(7).build().unwrap();
/// assert_eq!(cfg.trials, 8);
/// assert!(EvalConfig::builder().trials(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct EvalConfigBuilder {
    cfg: EvalConfig,
}

impl EvalConfigBuilder {
    /// Trials (routes) per task.
    pub fn trials(mut self, n: usize) -> Self {
        self.cfg.trials = n;
        self
    }

    /// World seed for the evaluation environment.
    pub fn world_seed(mut self, seed: u64) -> Self {
        self.cfg.world_seed = seed;
        self
    }

    /// Route-draw seed (fixed across methods).
    pub fn route_seed(mut self, seed: u64) -> Self {
        self.cfg.route_seed = seed;
        self
    }

    /// Traffic scale relative to the paper's counts.
    pub fn traffic_scale(mut self, scale: f64) -> Self {
        self.cfg.traffic_scale = scale;
        self
    }

    /// Allowed time per meter of route.
    pub fn seconds_per_meter(mut self, s: f64) -> Self {
        self.cfg.seconds_per_meter = s;
        self
    }

    /// Success radius around the destination, meters.
    pub fn arrival_radius(mut self, r: f32) -> Self {
        self.cfg.arrival_radius = r;
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> Result<EvalConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Outcome of one task's trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskResult {
    /// Successful trials.
    pub successes: usize,
    /// Total trials.
    pub trials: usize,
    /// Trials ended by collision.
    pub collisions: usize,
    /// Trials ended by timeout.
    pub timeouts: usize,
}

impl TaskResult {
    /// Success rate in percent (the tables' unit).
    pub fn percent(&self) -> f64 {
        if self.trials == 0 {
            100.0
        } else {
            self.successes as f64 / self.trials as f64 * 100.0
        }
    }
}

/// Tracks progress of the free-moving test vehicle along its assigned
/// route: projects the vehicle's position onto the route polyline and
/// advances monotonically (never backwards), so commands and the BEV route
/// channel stay consistent even when tracking is imperfect.
struct RouteTracker {
    route: Route,
    edge_idx: usize,
    s: f32,
}

impl RouteTracker {
    fn new(route: Route) -> Self {
        Self { route, edge_idx: 0, s: 0.0 }
    }

    /// Advances the tracked point toward the position nearest `pos`,
    /// scanning up to `lookahead` meters forward along the route.
    fn update(&mut self, map: &RoadNetwork, pos: Vec2, lookahead: f32) {
        let mut best = (f32::INFINITY, self.edge_idx, self.s);
        let mut walked = 0.0f32;
        let mut e = self.edge_idx;
        let mut s = self.s;
        let step = 1.5f32;
        while walked <= lookahead && e < self.route.edges.len() {
            let p = map.position_on_edge(self.route.edges[e], s);
            let d = p.distance(pos);
            if d < best.0 {
                best = (d, e, s);
            }
            s += step;
            walked += step;
            if s >= map.edge(self.route.edges[e]).length {
                e += 1;
                s = 0.0;
            }
        }
        self.edge_idx = best.1;
        self.s = best.2;
    }

    /// Lateral distance from the route at the tracked point.
    fn deviation(&self, map: &RoadNetwork, pos: Vec2) -> f32 {
        map.position_on_edge(self.route.edges[self.edge_idx], self.s).distance(pos)
    }

    /// High-level command at the tracked progress (mirrors
    /// `expert::command_for`).
    fn command(&self, map: &RoadNetwork) -> Command {
        let remaining = map.edge(self.route.edges[self.edge_idx]).length - self.s;
        if remaining > simworld::expert::COMMAND_HORIZON {
            return Command::Follow;
        }
        match self.route.edges.get(self.edge_idx + 1) {
            None => Command::Follow,
            Some(&next) => match classify_turn(map, self.route.edges[self.edge_idx], next) {
                TurnKind::Left => Command::Left,
                TurnKind::Right => Command::Right,
                TurnKind::Straight => Command::Straight,
            },
        }
    }

    fn destination(&self, map: &RoadNetwork) -> Vec2 {
        map.node(self.route.destination(map)).pos
    }

    /// The navigation scalars ([`crate::frame::NAV_FEATURES`]) at the
    /// tracked progress, normalized like [`crate::Frame`] does.
    fn nav_features(&self, map: &RoadNetwork) -> (f32, f32) {
        let (d, sign) = simworld::expert::next_turn_info(
            map,
            &self.route.edges,
            self.edge_idx,
            self.s,
        );
        (d / simworld::expert::TURN_LOOKAHEAD, sign)
    }
}

/// Draws a route matching the task's shape requirements.
fn draw_route<R: rand::Rng + ?Sized>(world: &World, task: Task, rng: &mut R) -> Route {
    let map = world.map();
    for _ in 0..4000 {
        let a = map.random_node(rng);
        let b = map.random_node(rng);
        let Some(route) = world.router().route(a, b) else { continue };
        let len = route.length(map);
        let turns = route.turn_count(map);
        let ok = match task {
            Task::Straight => turns == 0 && (150.0..500.0).contains(&len),
            Task::OneTurn => turns == 1 && (180.0..600.0).contains(&len),
            _ => turns >= 2 && len >= 350.0,
        };
        if ok {
            return route;
        }
    }
    panic!("could not draw a route for task {task:?} — map too small?");
}

/// The low-level controller: pure pursuit on the farthest waypoints.
///
/// * Aim: the mean of the last two predicted waypoints — the turn geometry
///   appears at the far end of the time-spaced horizon first, so aiming far
///   both initiates turns earliest and damps near-field regression noise.
/// * Gain: the pure-pursuit curvature is boosted (`K_STEER`) because the
///   regressor systematically under-predicts bend magnitude (it averages
///   over the straight approach frames of each turn).
/// * Speed: the first (dt-spaced) waypoint's distance over dt — the
///   time-spaced supervision encodes the expert's speed choice — capped
///   during announced turns (the expert's own turn discipline).
fn steer(wp: &[f32], command: Command, speed: f32, dt: f32) -> (f32, f32) {
    const K_STEER: f32 = 2.0;
    let (w1x, w1y) = (wp[0], wp[1]);
    let k = wp.len() / 2;
    let mut ax = 0.0f32;
    let mut ay = 0.0f32;
    let mut n = 0.0f32;
    for c in wp.chunks(2).skip(k.saturating_sub(2)) {
        ax += c[0];
        ay += c[1];
        n += 1.0;
    }
    if n == 0.0 {
        ax = w1x;
        ay = w1y;
        n = 1.0;
    }
    let (ax, ay) = (ax / n, ay / n);
    let mut target_speed = (w1x.hypot(w1y) / dt).clamp(0.0, 22.0);
    if matches!(command, Command::Left | Command::Right) {
        target_speed = target_speed.min(5.0);
    }
    let look_sq = (ax * ax + ay * ay).max(1e-3);
    let curvature = 2.0 * ay / look_sq;
    let yaw_rate = K_STEER * speed.max(1.5) * curvature;
    (yaw_rate, target_speed)
}

/// Drives one trial; returns `(success, collided, timed_out)`.
fn run_trial(learner: &DrivingLearner, world: &mut World, route: Route, cfg: &EvalConfig) -> (bool, bool, bool) {
    let map_len = route.length(world.map());
    let budget = (map_len as f64 * cfg.seconds_per_meter).max(60.0);
    let dt = (1.0 / world.config().fps) as f32;
    let pool = world.config().bev.pool;

    let first_edge = route.edges[0];
    let start = world.map().position_on_edge(first_edge, 0.0);
    let heading = world.map().tangent_on_edge(first_edge, 0.0).angle();
    let mut ego = FreeVehicle::new(start, heading);
    let mut tracker = RouteTracker::new(route);
    let destination = tracker.destination(world.map());
    // One BEV frame — and one feature/waypoint/scratch set — reused across
    // every step of the trial: the per-step loop allocates nothing after
    // the first iteration.
    let mut bev = Bev::blank(world.config().bev.cells);
    let mut features: Vec<f32> = Vec::new();
    let mut wp: Vec<f32> = Vec::new();
    let mut scratch = TrainScratch::new();

    let mut t = 0.0f64;
    while t < budget {
        tracker.update(world.map(), ego.pos, 25.0);
        // Arrived?
        if ego.pos.distance(destination) <= cfg.arrival_radius {
            return (true, false, false);
        }
        // Observe.
        let cars = world.car_positions();
        let peds = world.pedestrian_positions();
        let route_ahead = world.route_polyline_from(
            &tracker.route,
            tracker.edge_idx,
            tracker.s,
            60.0,
        );
        let pose = Pose { pos: ego.pos, heading: ego.heading };
        rasterize_into(
            &world.config().bev.clone(),
            pose,
            ego.speed,
            world.raster(),
            &cars,
            &peds,
            &route_ahead,
            &mut bev,
        );
        let command = tracker.command(world.map());
        bev.features_into(pool, &mut features);
        let (nav_d, nav_s) = tracker.nav_features(world.map());
        features.push(nav_d);
        features.push(nav_s);
        learner.predict_into(&features, command, &mut wp, &mut scratch);

        // Low-level control: pure pursuit on the second waypoint, speed
        // from the first (time-spaced at dt).
        let (yaw_rate, target_speed) = steer(&wp, command, ego.speed, dt);
        ego.step(yaw_rate, target_speed, dt);

        // Judge.
        if world.collides(ego.pos, 1.5, None) {
            return (false, true, false);
        }
        if tracker.deviation(world.map(), ego.pos) > 35.0 {
            // Hopelessly off the route: count as a (fast-forwarded) timeout.
            return (false, false, true);
        }
        world.step();
        t += dt as f64;
    }
    (false, false, true)
}

/// Drives one route of `task` printing per-frame telemetry to stderr —
/// a development aid for the controller (kept public for the `debug_drive`
/// binary).
pub fn debug_one_trial(learner: &DrivingLearner, task: Task, cfg: &EvalConfig) {
    let (cars, peds) = task.traffic(cfg.traffic_scale);
    let mut world = World::new(WorldConfig {
        seed: cfg.world_seed,
        n_experts: 0,
        n_background: cars,
        n_pedestrians: peds,
        ..WorldConfig::default()
    });
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.route_seed);
    let route = draw_route(&world, task, &mut rng);
    let map_len = route.length(world.map());
    eprintln!("== {} route: {:.0} m, {} turns ==", task.name(), map_len, route.turn_count(world.map()));
    let dt = (1.0 / world.config().fps) as f32;
    let pool = world.config().bev.pool;
    let first_edge = route.edges[0];
    let start = world.map().position_on_edge(first_edge, 0.0);
    let heading = world.map().tangent_on_edge(first_edge, 0.0).angle();
    let mut ego = FreeVehicle::new(start, heading);
    let mut tracker = RouteTracker::new(route);
    let destination = tracker.destination(world.map());
    let budget = (map_len as f64 * cfg.seconds_per_meter).max(60.0);
    let mut bev = Bev::blank(world.config().bev.cells);
    let mut features: Vec<f32> = Vec::new();
    let mut wp: Vec<f32> = Vec::new();
    let mut scratch = TrainScratch::new();
    let mut t = 0.0f64;
    let mut frame = 0u64;
    while t < budget {
        tracker.update(world.map(), ego.pos, 25.0);
        if ego.pos.distance(destination) <= cfg.arrival_radius {
            eprintln!("SUCCESS at t={t:.0}s");
            return;
        }
        let cars_p = world.car_positions();
        let peds_p = world.pedestrian_positions();
        let route_ahead =
            world.route_polyline_from(&tracker.route, tracker.edge_idx, tracker.s, 60.0);
        let pose = Pose { pos: ego.pos, heading: ego.heading };
        rasterize_into(
            &world.config().bev.clone(),
            pose,
            ego.speed,
            world.raster(),
            &cars_p,
            &peds_p,
            &route_ahead,
            &mut bev,
        );
        let command = tracker.command(world.map());
        bev.features_into(pool, &mut features);
        let (nav_d, nav_s) = tracker.nav_features(world.map());
        features.push(nav_d);
        features.push(nav_s);
        learner.predict_into(&features, command, &mut wp, &mut scratch);
        if frame % 10 == 0 {
            eprintln!(
                "t={t:>5.1} pos=({:>5.0},{:>5.0}) v={:>4.1} dev={:>5.1} cmd={:?} w1=({:.1},{:.1}) w2=({:.1},{:.1}) dest={:>4.0}",
                ego.pos.x, ego.pos.y, ego.speed,
                tracker.deviation(world.map(), ego.pos),
                command, wp[0], wp[1], wp[2], wp[3],
                ego.pos.distance(destination),
            );
        }
        let (yaw_rate, target_speed) = steer(&wp, command, ego.speed, dt);
        ego.step(yaw_rate, target_speed, dt);
        if world.collides(ego.pos, 1.5, None) {
            eprintln!("COLLISION at t={t:.0}s");
            return;
        }
        if tracker.deviation(world.map(), ego.pos) > 35.0 {
            eprintln!("OFF-ROUTE at t={t:.0}s");
            return;
        }
        world.step();
        t += dt as f64;
        frame += 1;
    }
    eprintln!("TIMEOUT after {budget:.0}s");
}

/// Evaluates a trained learner on `task`: `cfg.trials` routes, each driven
/// closed-loop against the task's traffic level.
///
/// Trials are fully independent: each starts from its own clone of a shared
/// base world, warmed a trial-specific number of frames to decorrelate
/// traffic, with its own route RNG derived from `cfg.route_seed` and the
/// trial index. Independence makes the trials embarrassingly parallel —
/// they run on the [`lbchat::exec`] worker pool — and the result is
/// bit-identical for any `LBCHAT_JOBS` setting. Routes depend only on the
/// (static) map and the derived seeds, so every method still faces the same
/// routes.
pub fn success_rate(learner: &DrivingLearner, task: Task, cfg: &EvalConfig) -> TaskResult {
    success_rate_obs(learner, task, cfg, &ObsSink::disabled())
}

/// [`success_rate`] with observability: when `obs` is recording, each
/// trial runs inside a `work_unit` span (stage `trial:<task>`) and emits
/// one `trial` event with its outcome (`success`, `collision`, or
/// `timeout`), alongside the `trials`/`collisions`/`timeouts` counters.
/// With a disabled sink this is exactly [`success_rate`].
pub fn success_rate_obs(
    learner: &DrivingLearner,
    task: Task,
    cfg: &EvalConfig,
    obs: &ObsSink,
) -> TaskResult {
    let (cars, peds) = task.traffic(cfg.traffic_scale);
    let base = World::new(WorldConfig {
        seed: cfg.world_seed,
        n_experts: 0,
        n_background: cars,
        n_pedestrians: peds,
        ..WorldConfig::default()
    });
    let stage = format!("trial:{}", task.name());
    let outcomes = exec::par_run_traced(obs, &stage, cfg.trials, |trial| {
        let mut world = base.clone();
        for _ in 0..(10 + 13 * trial) {
            world.step();
        }
        let mut route_rng = rand::rngs::StdRng::seed_from_u64(exec::derive_seed(
            cfg.route_seed,
            "eval-route",
            trial as u64,
        ));
        let route = draw_route(&world, task, &mut route_rng);
        let (ok, hit, slow) = run_trial(learner, &mut world, route, cfg);
        if obs.enabled() {
            obs.add("trials", 1);
            if hit {
                obs.add("collisions", 1);
            }
            if slow {
                obs.add("timeouts", 1);
            }
            let outcome = if ok {
                "success"
            } else if hit {
                "collision"
            } else {
                "timeout"
            };
            obs.emit(
                "trial",
                &[
                    ("task", task.name().into()),
                    ("trial", trial.into()),
                    ("outcome", outcome.into()),
                ],
            );
        }
        (ok, hit, slow)
    });
    let mut successes = 0;
    let mut collisions = 0;
    let mut timeouts = 0;
    for (ok, hit, slow) in outcomes {
        successes += ok as usize;
        collisions += hit as usize;
        timeouts += slow as usize;
    }
    TaskResult { successes, trials: cfg.trials, collisions, timeouts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect_datasets, CollectConfig};
    use lbchat::Learner;

    fn quick_cfg() -> EvalConfig {
        EvalConfig { trials: 4, ..EvalConfig::default() }
    }

    #[test]
    fn task_metadata() {
        assert_eq!(Task::ALL.len(), 5);
        assert_eq!(Task::NaviDense.traffic(1.0), (60, 300));
        assert_eq!(Task::Straight.traffic(1.0), (0, 0));
        assert_eq!(Task::NaviNormal.name(), "Navi. (Normal)");
    }

    #[test]
    fn result_percent() {
        let r = TaskResult { successes: 3, trials: 4, collisions: 1, timeouts: 0 };
        assert!((r.percent() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn builder_validates_domains() {
        let cfg = EvalConfig::builder()
            .trials(2)
            .world_seed(5)
            .route_seed(6)
            .traffic_scale(0.5)
            .seconds_per_meter(0.6)
            .arrival_radius(10.0)
            .build()
            .expect("all fields in domain");
        assert_eq!(cfg.trials, 2);
        assert_eq!(cfg.world_seed, 5);
        assert!((cfg.traffic_scale - 0.5).abs() < 1e-12);
        assert!(EvalConfig::builder().trials(0).build().is_err());
        assert!(EvalConfig::builder().seconds_per_meter(-1.0).build().is_err());
        assert!(EvalConfig::builder().traffic_scale(f64::NAN).build().is_err());
        assert!(EvalConfig::builder().arrival_radius(0.0).build().is_err());
    }

    #[test]
    fn untrained_model_fails_navigation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let spec = DrivingLearner::spec_for(
            simworld::bev::BevConfig::default().feature_len(),
            5,
        );
        let learner = DrivingLearner::new(&spec, 1e-3, &mut rng);
        let r = success_rate(&learner, Task::NaviEmpty, &quick_cfg());
        assert!(
            r.successes <= r.trials / 2,
            "an untrained model should mostly fail: {r:?}"
        );
    }

    #[test]
    fn trained_model_drives_straight_routes() {
        // Train on a small world until the imitation loss is low, then the
        // policy must handle at least straight driving.
        let mut world = World::new(WorldConfig::small(11));
        let datasets =
            collect_datasets(&mut world, &CollectConfig { seconds: 240.0, stride: 1, balance_commands: true });
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let spec =
            DrivingLearner::spec_for(world.config().bev.feature_len(), world.config().n_waypoints);
        let mut learner = DrivingLearner::new(&spec, 3e-3, &mut rng);
        // Train on the pooled data.
        let all: Vec<&crate::Frame> =
            datasets.iter().flat_map(|d| d.samples().iter()).collect();
        use rand::seq::SliceRandom;
        let mut order: Vec<usize> = (0..all.len()).collect();
        for _ in 0..60 {
            order.shuffle(&mut rng);
            for chunk in order.chunks(64) {
                let batch: Vec<(&crate::Frame, f32)> =
                    chunk.iter().map(|&i| (all[i], 1.0)).collect();
                learner.train_step(&batch);
            }
        }
        let mean_loss: f32 =
            all.iter().map(|f| learner.loss(f)).sum::<f32>() / all.len() as f32;
        assert!(mean_loss < 1.2, "imitation must fit the experts: {mean_loss}");
        let r = success_rate(&learner, Task::Straight, &quick_cfg());
        assert!(
            r.successes >= r.trials / 2,
            "a trained model should mostly manage straight routes: {r:?}"
        );
    }
}
