//! The [`lbchat::Learner`] implementation for the driving task.
//!
//! Training runs through the batched `vnn` kernels: each minibatch is split
//! into fixed [`vnn::SHARD`]-sized gradient shards, the shards are processed
//! (possibly in parallel, via [`lbchat::exec::par_for_each_mut`]) into a
//! reusable [`TrainScratch`] arena, and the fixed-order reduction plus a
//! fused scaled SGD step make the result bit-identical for every `--jobs`
//! setting — and to the per-sample `vnn::reference` composition.

use crate::frame::Frame;
use lbchat::{Learner, TrainStats};
use rand::Rng;
use simworld::expert::Command;
use vnn::{
    BatchSource, BranchedPolicy, ParamVec, PolicySample, PolicySpec, Sgd, TrainScratch, SHARD,
};

/// A minibatch view over the `(frame, weight)` pairs the [`Learner`] trait
/// hands to [`DrivingLearner::train_step`].
struct FrameBatch<'a, 'b>(&'a [(&'b Frame, f32)]);

impl BatchSource for FrameBatch<'_, '_> {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn at(&self, i: usize) -> PolicySample<'_> {
        let (frame, weight) = &self.0[i];
        PolicySample {
            input: &frame.features,
            branch: frame.command.index(),
            target: &frame.waypoints,
            weight: *weight,
        }
    }
}

/// The paper's learning-rate default (§IV-A: 1e-4). Our model is three
/// orders of magnitude smaller than the 52 MB CNN, so the effective default
/// used by [`DrivingLearner::spec_for`] scales it up; the value here is kept
/// for reference and paper-scale runs.
pub const PAPER_LEARNING_RATE: f32 = 1e-4;

/// A command-branched waypoint regressor + SGD optimizer, implementing the
/// [`Learner`] interface LbChat trains through.
#[derive(Debug, Clone)]
pub struct DrivingLearner {
    policy: BranchedPolicy,
    opt: Sgd,
    scratch: TrainScratch,
}

impl DrivingLearner {
    /// Builds a learner with Xavier initialization from `rng`.
    ///
    /// All vehicles must construct their learner from identically seeded
    /// RNGs — the paper assumes "the models on vehicles have the same
    /// initialization".
    pub fn new<R: Rng + ?Sized>(spec: &PolicySpec, lr: f32, rng: &mut R) -> Self {
        Self {
            policy: BranchedPolicy::new(spec, rng),
            opt: Sgd::new(lr, 0.9, 1e-5),
            scratch: TrainScratch::new(),
        }
    }

    /// The policy architecture for a given *BEV* feature length and
    /// waypoint count; the input dimension includes the
    /// [`crate::frame::NAV_FEATURES`] navigation scalars every [`Frame`]
    /// appends.
    pub fn spec_for(bev_feature_len: usize, n_waypoints: usize) -> PolicySpec {
        PolicySpec {
            input_dim: bev_feature_len + crate::frame::NAV_FEATURES,
            trunk: vec![96, 64],
            n_branches: Command::COUNT,
            waypoints: n_waypoints,
            // The navigation scalars skip straight into every head.
            skip_inputs: crate::frame::NAV_FEATURES,
        }
    }

    /// The underlying policy (for closed-loop driving).
    pub fn policy(&self) -> &BranchedPolicy {
        &self.policy
    }

    /// Predicted waypoints for `features` under `command`.
    pub fn predict(&self, features: &[f32], command: Command) -> Vec<f32> {
        self.policy.forward(features, command.index())
    }

    /// [`DrivingLearner::predict`] into a caller-owned buffer through a
    /// reusable scratch arena — bit-identical output, no allocation after
    /// warmup. The closed-loop evaluator calls this once per control step.
    pub fn predict_into(
        &self,
        features: &[f32],
        command: Command,
        out: &mut Vec<f32>,
        scratch: &mut TrainScratch,
    ) {
        self.policy.forward_into(features, command.index(), out, scratch);
    }
}

impl Learner for DrivingLearner {
    type Sample = Frame;

    fn params(&self) -> &ParamVec {
        self.policy.params()
    }

    fn set_params(&mut self, params: ParamVec) {
        self.policy.set_params(params);
    }

    fn loss(&self, sample: &Frame) -> f32 {
        self.policy
            .loss(&sample.features, sample.command.index(), &sample.waypoints)
    }

    fn loss_with(&self, params: &ParamVec, sample: &Frame) -> f32 {
        self.policy
            .loss_with(params, &sample.features, sample.command.index(), &sample.waypoints)
    }

    fn train_step(&mut self, batch: &[(&Frame, f32)]) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        let n = batch.len();
        let src = FrameBatch(batch);
        // Fixed SHARD-sized shards, fanned over the worker pool: shard
        // contents depend only on the batch, never on the worker count, and
        // the reduction below runs in shard order on this thread — so
        // jobs=1 and jobs=4 produce bit-identical models.
        let policy = &self.policy;
        lbchat::exec::par_for_each_mut(self.scratch.shards_mut(n), |s, shard| {
            policy.train_shard(&src, s * SHARD, shard);
        });
        let out = policy.reduce_shards(&mut self.scratch, n);
        // Fused normalization: the gradient is Σ w·g, divided by Σ w inside
        // the optimizer step (bit-identical to a separate scaling pass).
        let inv = 1.0 / out.weight_sum;
        self.opt.step_scaled(self.policy.params_mut().as_mut_slice(), self.scratch.grad(), inv);
        out.loss_sum * inv
    }

    fn group_of(&self, sample: &Frame) -> usize {
        sample.command.index()
    }

    fn n_groups(&self) -> usize {
        Command::COUNT
    }

    fn on_params_replaced(&mut self) {
        self.opt.reset_momentum();
    }

    fn take_train_stats(&mut self) -> TrainStats {
        self.scratch.take_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn frame(cmd: Command, target: f32) -> Frame {
        Frame {
            features: vec![0.2; 10],
            command: cmd,
            waypoints: vec![target; 6],
        }
    }

    fn learner(seed: u64) -> DrivingLearner {
        let spec = PolicySpec { input_dim: 10, trunk: vec![16, 12], n_branches: 4, waypoints: 3, skip_inputs: 2 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        DrivingLearner::new(&spec, 5e-3, &mut rng)
    }

    #[test]
    fn identical_seeds_give_identical_models() {
        assert_eq!(learner(1).params(), learner(1).params());
    }

    #[test]
    fn training_reduces_loss() {
        let mut l = learner(2);
        let f = frame(Command::Left, 0.5);
        let before = l.loss(&f);
        for _ in 0..200 {
            l.train_step(&[(&f, 1.0)]);
        }
        assert!(l.loss(&f) < before * 0.2, "{} -> {}", before, l.loss(&f));
    }

    #[test]
    fn weighted_samples_pull_harder() {
        // Two conflicting targets for the same input: the heavier one wins.
        let mut l = learner(3);
        let a = frame(Command::Follow, 1.0);
        let b = frame(Command::Follow, -1.0);
        for _ in 0..300 {
            l.train_step(&[(&a, 9.0), (&b, 1.0)]);
        }
        let pred = l.predict(&a.features, Command::Follow);
        assert!(pred[0] > 0.4, "heavily weighted target should dominate: {}", pred[0]);
    }

    #[test]
    fn group_is_the_command() {
        let l = learner(4);
        assert_eq!(l.group_of(&frame(Command::Right, 0.0)), Command::Right.index());
        assert_eq!(l.n_groups(), 4);
    }

    #[test]
    fn set_params_roundtrip() {
        let mut l = learner(5);
        let zeros = ParamVec::zeros(l.params().len());
        l.set_params(zeros.clone());
        assert_eq!(l.params(), &zeros);
        let f = frame(Command::Straight, 0.3);
        // Zero model predicts zeros: loss = mean |0 - 0.3|.
        assert!((l.loss(&f) - 0.3).abs() < 1e-6);
    }
}
