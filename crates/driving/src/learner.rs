//! The [`lbchat::Learner`] implementation for the driving task.

use crate::frame::Frame;
use lbchat::Learner;
use rand::Rng;
use simworld::expert::Command;
use vnn::{BranchedPolicy, ParamVec, PolicySpec, Sgd};

/// The paper's learning-rate default (§IV-A: 1e-4). Our model is three
/// orders of magnitude smaller than the 52 MB CNN, so the effective default
/// used by [`DrivingLearner::spec_for`] scales it up; the value here is kept
/// for reference and paper-scale runs.
pub const PAPER_LEARNING_RATE: f32 = 1e-4;

/// A command-branched waypoint regressor + SGD optimizer, implementing the
/// [`Learner`] interface LbChat trains through.
#[derive(Debug, Clone)]
pub struct DrivingLearner {
    policy: BranchedPolicy,
    opt: Sgd,
}

impl DrivingLearner {
    /// Builds a learner with Xavier initialization from `rng`.
    ///
    /// All vehicles must construct their learner from identically seeded
    /// RNGs — the paper assumes "the models on vehicles have the same
    /// initialization".
    pub fn new<R: Rng + ?Sized>(spec: &PolicySpec, lr: f32, rng: &mut R) -> Self {
        Self {
            policy: BranchedPolicy::new(spec, rng),
            opt: Sgd::new(lr, 0.9, 1e-5),
        }
    }

    /// The policy architecture for a given *BEV* feature length and
    /// waypoint count; the input dimension includes the
    /// [`crate::frame::NAV_FEATURES`] navigation scalars every [`Frame`]
    /// appends.
    pub fn spec_for(bev_feature_len: usize, n_waypoints: usize) -> PolicySpec {
        PolicySpec {
            input_dim: bev_feature_len + crate::frame::NAV_FEATURES,
            trunk: vec![96, 64],
            n_branches: Command::COUNT,
            waypoints: n_waypoints,
            // The navigation scalars skip straight into every head.
            skip_inputs: crate::frame::NAV_FEATURES,
        }
    }

    /// The underlying policy (for closed-loop driving).
    pub fn policy(&self) -> &BranchedPolicy {
        &self.policy
    }

    /// Predicted waypoints for `features` under `command`.
    pub fn predict(&self, features: &[f32], command: Command) -> Vec<f32> {
        self.policy.forward(features, command.index())
    }
}

impl Learner for DrivingLearner {
    type Sample = Frame;

    fn params(&self) -> &ParamVec {
        self.policy.params()
    }

    fn set_params(&mut self, params: ParamVec) {
        self.policy.set_params(params);
    }

    fn loss(&self, sample: &Frame) -> f32 {
        self.policy
            .loss(&sample.features, sample.command.index(), &sample.waypoints)
    }

    fn loss_with(&self, params: &ParamVec, sample: &Frame) -> f32 {
        self.policy
            .loss_with(params, &sample.features, sample.command.index(), &sample.waypoints)
    }

    fn train_step(&mut self, batch: &[(&Frame, f32)]) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        let n_params = self.policy.param_count();
        let mut grad = vec![0.0f32; n_params];
        let mut loss_acc = 0.0f32;
        let mut w_acc = 0.0f32;
        for (frame, w) in batch {
            let (l, g) = self.policy.loss_and_grad(
                &frame.features,
                frame.command.index(),
                &frame.waypoints,
            );
            loss_acc += w * l;
            w_acc += w;
            for (acc, gi) in grad.iter_mut().zip(&g) {
                *acc += w * gi;
            }
        }
        let inv = 1.0 / w_acc;
        for g in &mut grad {
            *g *= inv;
        }
        self.opt.step(self.policy.params_mut().as_mut_slice(), &grad);
        loss_acc * inv
    }

    fn group_of(&self, sample: &Frame) -> usize {
        sample.command.index()
    }

    fn n_groups(&self) -> usize {
        Command::COUNT
    }

    fn on_params_replaced(&mut self) {
        self.opt.reset_momentum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn frame(cmd: Command, target: f32) -> Frame {
        Frame {
            features: vec![0.2; 10],
            command: cmd,
            waypoints: vec![target; 6],
        }
    }

    fn learner(seed: u64) -> DrivingLearner {
        let spec = PolicySpec { input_dim: 10, trunk: vec![16, 12], n_branches: 4, waypoints: 3, skip_inputs: 2 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        DrivingLearner::new(&spec, 5e-3, &mut rng)
    }

    #[test]
    fn identical_seeds_give_identical_models() {
        assert_eq!(learner(1).params(), learner(1).params());
    }

    #[test]
    fn training_reduces_loss() {
        let mut l = learner(2);
        let f = frame(Command::Left, 0.5);
        let before = l.loss(&f);
        for _ in 0..200 {
            l.train_step(&[(&f, 1.0)]);
        }
        assert!(l.loss(&f) < before * 0.2, "{} -> {}", before, l.loss(&f));
    }

    #[test]
    fn weighted_samples_pull_harder() {
        // Two conflicting targets for the same input: the heavier one wins.
        let mut l = learner(3);
        let a = frame(Command::Follow, 1.0);
        let b = frame(Command::Follow, -1.0);
        for _ in 0..300 {
            l.train_step(&[(&a, 9.0), (&b, 1.0)]);
        }
        let pred = l.predict(&a.features, Command::Follow);
        assert!(pred[0] > 0.4, "heavily weighted target should dominate: {}", pred[0]);
    }

    #[test]
    fn group_is_the_command() {
        let l = learner(4);
        assert_eq!(l.group_of(&frame(Command::Right, 0.0)), Command::Right.index());
        assert_eq!(l.n_groups(), 4);
    }

    #[test]
    fn set_params_roundtrip() {
        let mut l = learner(5);
        let zeros = ParamVec::zeros(l.params().len());
        l.set_params(zeros.clone());
        assert_eq!(l.params(), &zeros);
        let f = frame(Command::Straight, 0.3);
        // Zero model predicts zeros: loss = mean |0 - 0.3|.
        assert!((l.loss(&f) - 0.3).abs() < 1e-6);
    }
}
