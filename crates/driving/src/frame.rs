//! The driving training sample.

use simworld::bev::Bev;
use simworld::expert::{Command, ExpertOutput};

/// One imitation-learning sample: featurized BEV observation, the
/// conditional command, and the expert's time-spaced waypoints (the
/// regression target).
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Pooled BEV features + normalized speed (the policy input).
    pub features: Vec<f32>,
    /// High-level command selecting the policy branch.
    pub command: Command,
    /// Target waypoints `[x1, y1, ..]` in the ego frame.
    pub waypoints: Vec<f32>,
}

/// Extra navigation scalars appended after the BEV features: normalized
/// distance to the next turn and its direction sign.
pub const NAV_FEATURES: usize = 2;

impl Frame {
    /// Builds a frame from a world observation: pooled BEV features plus
    /// the [`NAV_FEATURES`] navigation scalars.
    pub fn from_observation(bev: &Bev, sup: &ExpertOutput, pool: usize) -> Self {
        let mut features = bev.features(pool);
        features.push(sup.turn_distance / simworld::expert::TURN_LOOKAHEAD);
        features.push(sup.turn_sign);
        Self {
            features,
            command: sup.command,
            waypoints: sup.waypoints.clone(),
        }
    }

    /// Number of waypoints in the target.
    pub fn n_waypoints(&self) -> usize {
        self.waypoints.len() / 2
    }

    /// Approximate serialized size of a frame in bytes (features + targets
    /// + command), used to size coreset transfers.
    pub fn wire_bytes(&self) -> usize {
        4 * (self.features.len() + self.waypoints.len()) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simworld::world::{World, WorldConfig};

    #[test]
    fn frame_from_observation_has_expected_shape() {
        let w = World::new(WorldConfig::small(1));
        let (bev, sup) = w.observe_expert(0);
        let f = Frame::from_observation(&bev, &sup, w.config().bev.pool);
        assert_eq!(f.features.len(), w.config().bev.feature_len() + NAV_FEATURES);
        assert_eq!(f.n_waypoints(), w.config().n_waypoints);
        assert!(f.wire_bytes() > 0);
    }

    #[test]
    fn features_are_finite() {
        let w = World::new(WorldConfig::small(2));
        let (bev, sup) = w.observe_expert(3);
        let f = Frame::from_observation(&bev, &sup, w.config().bev.pool);
        assert!(f.features.iter().all(|v| v.is_finite()));
        assert!(f.waypoints.iter().all(|v| v.is_finite()));
    }
}
