//! # driving — the BEV driving decision-making task
//!
//! The paper's evaluation task: a policy maps a bird's-eye-view perception
//! plus a high-level navigation command to the next few waypoints, trained
//! by imitating privileged expert autopilots. This crate binds the
//! [`simworld`] data source and the [`vnn`] policy network to the
//! [`lbchat`] learning machinery, and provides the closed-loop evaluator
//! behind every driving-success-rate table:
//!
//! * [`frame`] — the training sample: featurized BEV + command + waypoints.
//! * [`learner`] — [`DrivingLearner`], the [`lbchat::Learner`]
//!   implementation wrapping the command-branched policy and its optimizer.
//! * [`collect`] — per-vehicle dataset collection from expert autopilots
//!   (each vehicle keeps what *its own route* showed it, which is exactly
//!   why peer coresets carry information).
//! * [`eval`] — closed-loop driving evaluation on the five CARLA-style
//!   tasks (Straight, One Turn, Navigation empty/normal/dense) with
//!   collision and timeout judging.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collect;
pub mod eval;
pub mod frame;
pub mod learner;
pub mod wire;

pub use collect::{collect_datasets, CollectConfig};
pub use eval::{success_rate, success_rate_obs, EvalConfig, EvalConfigBuilder, Task, TaskResult};
pub use frame::Frame;
pub use learner::DrivingLearner;
