//! Worker-count invariance of batched local training.
//!
//! The batched `vnn` kernels shard every minibatch into fixed
//! [`vnn::SHARD`]-sized gradient shards whose contents depend only on the
//! batch, and reduce them in shard order on the calling thread — so the
//! trained model must be bit-identical for every `--jobs` setting. This
//! test drives [`DrivingLearner`] end-to-end under `jobs=1` and `jobs=4`
//! and compares raw parameter bits.
//!
//! Kept as a single `#[test]` because [`lbchat::exec::set_jobs`] is a
//! process-wide override; parallel test functions would race on it.

use driving::frame::Frame;
use driving::learner::DrivingLearner;
use lbchat::Learner;
use rand::{RngExt, SeedableRng};
use simworld::expert::Command;
use vnn::PolicySpec;

const INPUT_DIM: usize = 12;
const WAYPOINTS: usize = 4;

fn spec() -> PolicySpec {
    PolicySpec {
        input_dim: INPUT_DIM,
        trunk: vec![24, 16],
        n_branches: Command::COUNT,
        waypoints: WAYPOINTS,
        skip_inputs: 2,
    }
}

fn random_frames(n: usize, seed: u64) -> Vec<(Frame, f32)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let commands = [Command::Follow, Command::Left, Command::Right, Command::Straight];
    (0..n)
        .map(|_| {
            let features: Vec<f32> = (0..INPUT_DIM).map(|_| rng.random_range(-1.0..1.0)).collect();
            let waypoints: Vec<f32> =
                (0..2 * WAYPOINTS).map(|_| rng.random_range(-2.0..2.0)).collect();
            let command = commands[rng.random_range(0..commands.len())];
            let weight = rng.random_range(0.25..4.0);
            (Frame { features, command, waypoints }, weight)
        })
        .collect()
}

/// Trains one fresh learner for `epochs` passes over `frames` and returns
/// the final parameter bits.
fn train(frames: &[(Frame, f32)], epochs: usize) -> Vec<u32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut learner = DrivingLearner::new(&spec(), 1e-2, &mut rng);
    let batch: Vec<(&Frame, f32)> = frames.iter().map(|(f, w)| (f, *w)).collect();
    for _ in 0..epochs {
        learner.train_step(&batch);
    }
    learner.params().as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn training_is_bitwise_invariant_to_worker_count() {
    // 43 samples = 3 whole shards + a ragged tail, so the reduction order
    // (not just the shard contents) is exercised.
    let frames = random_frames(43, 99);

    lbchat::exec::set_jobs(1);
    let serial = train(&frames, 5);
    lbchat::exec::set_jobs(4);
    let parallel = train(&frames, 5);
    lbchat::exec::set_jobs(0); // restore hardware detection

    assert!(serial.iter().any(|&b| b != 0), "training must move the parameters");
    assert_eq!(serial, parallel, "jobs=1 and jobs=4 must produce identical bits");
}
