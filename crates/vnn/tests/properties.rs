//! Property-based tests over the NN substrate's invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use vnn::loss::{mean_loss, mean_loss_and_grad, LossKind};
use vnn::wire::{from_dense_bytes, to_dense_bytes, SparseModel};
use vnn::{BranchedPolicy, Minibatcher, ParamVec, PolicySpec, Sgd};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dense_wire_roundtrip(values in prop::collection::vec(-1e6f32..1e6, 0..200)) {
        let p = ParamVec::from_vec(values);
        let bytes = to_dense_bytes(&p);
        prop_assert_eq!(from_dense_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn sparse_wire_roundtrip(
        pairs in prop::collection::btree_map(0u32..1000, -1e3f32..1e3, 0..64),
    ) {
        let indices: Vec<u32> = pairs.keys().copied().collect();
        let values: Vec<f32> = pairs.values().copied().collect();
        let s = SparseModel::new(1000, indices, values);
        let bytes = s.to_bytes();
        prop_assert_eq!(SparseModel::from_bytes(1000, &bytes).unwrap(), s);
    }

    #[test]
    fn weighted_average_stays_in_hull(
        a in prop::collection::vec(-10.0f32..10.0, 1..50),
        shift in -5.0f32..5.0,
        w1 in 0.01f32..10.0,
        w2 in 0.01f32..10.0,
    ) {
        let b: Vec<f32> = a.iter().map(|v| v + shift).collect();
        let pa = ParamVec::from_vec(a.clone());
        let pb = ParamVec::from_vec(b.clone());
        let avg = ParamVec::weighted_average(&pa, w1, &pb, w2);
        for ((x, y), z) in a.iter().zip(&b).zip(avg.as_slice()) {
            let (lo, hi) = if x <= y { (*x, *y) } else { (*y, *x) };
            prop_assert!(*z >= lo - 1e-4 && *z <= hi + 1e-4);
        }
    }

    #[test]
    fn axpy_matches_manual(
        a in prop::collection::vec(-10.0f32..10.0, 1..30),
        alpha in -3.0f32..3.0,
    ) {
        let b: Vec<f32> = a.iter().map(|v| v * 0.5 + 1.0).collect();
        let mut pa = ParamVec::from_vec(a.clone());
        let pb = ParamVec::from_vec(b.clone());
        pa.axpy(alpha, &pb);
        for ((orig, add), got) in a.iter().zip(&b).zip(pa.as_slice()) {
            prop_assert!((orig + alpha * add - got).abs() < 1e-4);
        }
    }

    #[test]
    fn losses_are_nonnegative_and_zero_at_target(
        target in prop::collection::vec(-10.0f32..10.0, 1..20),
        noise in -5.0f32..5.0,
    ) {
        let pred: Vec<f32> = target.iter().map(|t| t + noise).collect();
        for kind in [LossKind::L1, LossKind::SmoothL1, LossKind::Mse] {
            prop_assert!(mean_loss(kind, &pred, &target) >= 0.0);
            prop_assert!(mean_loss(kind, &target, &target) == 0.0);
        }
    }

    #[test]
    fn loss_grad_points_uphill(
        target in prop::collection::vec(-5.0f32..5.0, 2..10),
        noise in 0.1f32..3.0,
    ) {
        // Moving predictions along +grad must not decrease the loss.
        let pred: Vec<f32> = target.iter().map(|t| t + noise).collect();
        for kind in [LossKind::SmoothL1, LossKind::Mse] {
            let (l0, g) = mean_loss_and_grad(kind, &pred, &target);
            let stepped: Vec<f32> =
                pred.iter().zip(&g).map(|(p, gi)| p + 0.01 * gi).collect();
            let l1 = mean_loss(kind, &stepped, &target);
            prop_assert!(l1 >= l0 - 1e-5, "{:?}: {} -> {}", kind, l0, l1);
        }
    }

    #[test]
    fn minibatcher_epoch_is_a_permutation(n in 1usize..100, batch in 1usize..32) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut mb = Minibatcher::new(n, batch);
        let mut seen = vec![0u32; n];
        let batches_per_epoch = n.div_ceil(batch);
        for _ in 0..batches_per_epoch {
            for i in mb.next_batch(&mut rng) {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "{:?}", seen);
    }

    #[test]
    fn sgd_step_moves_against_gradient(
        params in prop::collection::vec(-5.0f32..5.0, 1..20),
        lr in 0.001f32..0.5,
    ) {
        let grad: Vec<f32> = params.iter().map(|p| p.signum() + 0.1).collect();
        let mut p = params.clone();
        let mut opt = Sgd::new(lr, 0.0, 0.0);
        opt.step(&mut p, &grad);
        for ((orig, g), new) in params.iter().zip(&grad).zip(&p) {
            prop_assert!((new - (orig - lr * g)).abs() < 1e-5);
        }
    }
}

#[test]
fn policy_loss_decreases_under_training_on_random_data() {
    let spec = PolicySpec { input_dim: 12, trunk: vec![24, 16], n_branches: 4, waypoints: 4, skip_inputs: 0 };
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let mut policy = BranchedPolicy::new(&spec, &mut rng);
    let mut opt = Sgd::new(5e-3, 0.9, 0.0);
    // A fixed synthetic mapping: target depends linearly on the input.
    let data: Vec<(Vec<f32>, usize, Vec<f32>)> = (0..64)
        .map(|k| {
            let x: Vec<f32> = (0..12).map(|i| ((k * 13 + i * 7) % 19) as f32 / 19.0).collect();
            let branch = k % 4;
            let t: Vec<f32> = (0..8).map(|i| x[i % 12] * 0.5 - 0.25).collect();
            (x, branch, t)
        })
        .collect();
    let mean = |p: &BranchedPolicy| -> f32 {
        data.iter().map(|(x, b, t)| p.loss(x, *b, t)).sum::<f32>() / data.len() as f32
    };
    let before = mean(&policy);
    for _ in 0..150 {
        for (x, b, t) in &data {
            let (_, g) = policy.loss_and_grad(x, *b, t);
            opt.step(policy.params_mut().as_mut_slice(), &g);
        }
    }
    let after = mean(&policy);
    assert!(after < before * 0.5, "{before} -> {after}");
}
