//! Property-based tests over the NN substrate's invariants.

use proptest::prelude::*;
use rand::{RngExt, SeedableRng};
use vnn::loss::{mean_loss, mean_loss_and_grad, LossKind};
use vnn::wire::{from_dense_bytes, to_dense_bytes, SparseModel};
use vnn::{
    Adam, BranchedPolicy, Minibatcher, ParamVec, PolicySample, PolicySpec, Sgd, TrainScratch,
    SHARD,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dense_wire_roundtrip(values in prop::collection::vec(-1e6f32..1e6, 0..200)) {
        let p = ParamVec::from_vec(values);
        let bytes = to_dense_bytes(&p);
        prop_assert_eq!(from_dense_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn sparse_wire_roundtrip(
        pairs in prop::collection::btree_map(0u32..1000, -1e3f32..1e3, 0..64),
    ) {
        let indices: Vec<u32> = pairs.keys().copied().collect();
        let values: Vec<f32> = pairs.values().copied().collect();
        let s = SparseModel::new(1000, indices, values);
        let bytes = s.to_bytes();
        prop_assert_eq!(SparseModel::from_bytes(1000, &bytes).unwrap(), s);
    }

    #[test]
    fn weighted_average_stays_in_hull(
        a in prop::collection::vec(-10.0f32..10.0, 1..50),
        shift in -5.0f32..5.0,
        w1 in 0.01f32..10.0,
        w2 in 0.01f32..10.0,
    ) {
        let b: Vec<f32> = a.iter().map(|v| v + shift).collect();
        let pa = ParamVec::from_vec(a.clone());
        let pb = ParamVec::from_vec(b.clone());
        let avg = ParamVec::weighted_average(&pa, w1, &pb, w2);
        for ((x, y), z) in a.iter().zip(&b).zip(avg.as_slice()) {
            let (lo, hi) = if x <= y { (*x, *y) } else { (*y, *x) };
            prop_assert!(*z >= lo - 1e-4 && *z <= hi + 1e-4);
        }
    }

    #[test]
    fn axpy_matches_manual(
        a in prop::collection::vec(-10.0f32..10.0, 1..30),
        alpha in -3.0f32..3.0,
    ) {
        let b: Vec<f32> = a.iter().map(|v| v * 0.5 + 1.0).collect();
        let mut pa = ParamVec::from_vec(a.clone());
        let pb = ParamVec::from_vec(b.clone());
        pa.axpy(alpha, &pb);
        for ((orig, add), got) in a.iter().zip(&b).zip(pa.as_slice()) {
            prop_assert!((orig + alpha * add - got).abs() < 1e-4);
        }
    }

    #[test]
    fn losses_are_nonnegative_and_zero_at_target(
        target in prop::collection::vec(-10.0f32..10.0, 1..20),
        noise in -5.0f32..5.0,
    ) {
        let pred: Vec<f32> = target.iter().map(|t| t + noise).collect();
        for kind in [LossKind::L1, LossKind::SmoothL1, LossKind::Mse] {
            prop_assert!(mean_loss(kind, &pred, &target) >= 0.0);
            prop_assert!(mean_loss(kind, &target, &target) == 0.0);
        }
    }

    #[test]
    fn loss_grad_points_uphill(
        target in prop::collection::vec(-5.0f32..5.0, 2..10),
        noise in 0.1f32..3.0,
    ) {
        // Moving predictions along +grad must not decrease the loss.
        let pred: Vec<f32> = target.iter().map(|t| t + noise).collect();
        for kind in [LossKind::SmoothL1, LossKind::Mse] {
            let (l0, g) = mean_loss_and_grad(kind, &pred, &target);
            let stepped: Vec<f32> =
                pred.iter().zip(&g).map(|(p, gi)| p + 0.01 * gi).collect();
            let l1 = mean_loss(kind, &stepped, &target);
            prop_assert!(l1 >= l0 - 1e-5, "{:?}: {} -> {}", kind, l0, l1);
        }
    }

    #[test]
    fn minibatcher_epoch_is_a_permutation(n in 1usize..100, batch in 1usize..32) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut mb = Minibatcher::new(n, batch);
        let mut seen = vec![0u32; n];
        let batches_per_epoch = n.div_ceil(batch);
        for _ in 0..batches_per_epoch {
            for i in mb.next_batch(&mut rng) {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "{:?}", seen);
    }

    #[test]
    fn sgd_step_moves_against_gradient(
        params in prop::collection::vec(-5.0f32..5.0, 1..20),
        lr in 0.001f32..0.5,
    ) {
        let grad: Vec<f32> = params.iter().map(|p| p.signum() + 0.1).collect();
        let mut p = params.clone();
        let mut opt = Sgd::new(lr, 0.0, 0.0);
        opt.step(&mut p, &grad);
        for ((orig, g), new) in params.iter().zip(&grad).zip(&p) {
            prop_assert!((new - (orig - lr * g)).abs() < 1e-5);
        }
    }
}

#[test]
fn policy_loss_decreases_under_training_on_random_data() {
    let spec = PolicySpec { input_dim: 12, trunk: vec![24, 16], n_branches: 4, waypoints: 4, skip_inputs: 0 };
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let mut policy = BranchedPolicy::new(&spec, &mut rng);
    let mut opt = Sgd::new(5e-3, 0.9, 0.0);
    // A fixed synthetic mapping: target depends linearly on the input.
    let data: Vec<(Vec<f32>, usize, Vec<f32>)> = (0..64)
        .map(|k| {
            let x: Vec<f32> = (0..12).map(|i| ((k * 13 + i * 7) % 19) as f32 / 19.0).collect();
            let branch = k % 4;
            let t: Vec<f32> = (0..8).map(|i| x[i % 12] * 0.5 - 0.25).collect();
            (x, branch, t)
        })
        .collect();
    let mean = |p: &BranchedPolicy| -> f32 {
        data.iter().map(|(x, b, t)| p.loss(x, *b, t)).sum::<f32>() / data.len() as f32
    };
    let before = mean(&policy);
    for _ in 0..150 {
        for (x, b, t) in &data {
            let (_, g) = policy.loss_and_grad(x, *b, t);
            opt.step(policy.params_mut().as_mut_slice(), &g);
        }
    }
    let after = mean(&policy);
    assert!(after < before * 0.5, "{before} -> {after}");
}

// ---------------------------------------------------------------------------
// Bit-identity of the batched kernels against `vnn::reference`.
//
// The batched hot path (PR 5) reorders loops for cache locality but must
// keep every per-dot-product and per-sample accumulation order fixed; these
// properties assert raw f32 bits, not tolerances.
// ---------------------------------------------------------------------------

/// Owned sample storage a `PolicySample` batch can borrow from.
type OwnedBatch = Vec<(Vec<f32>, usize, Vec<f32>, f32)>;

const PROP_INPUT_DIM: usize = 10;
const PROP_WAYPOINTS: usize = 3;

fn seeded_policy_and_batch(seed: u64, n: usize) -> (BranchedPolicy, OwnedBatch) {
    let spec = PolicySpec {
        input_dim: PROP_INPUT_DIM,
        trunk: vec![18, 12],
        n_branches: 4,
        waypoints: PROP_WAYPOINTS,
        skip_inputs: 2,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let policy = BranchedPolicy::new(&spec, &mut rng);
    let data = (0..n)
        .map(|_| {
            let x: Vec<f32> =
                (0..PROP_INPUT_DIM).map(|_| rng.random_range(-1.0f32..1.0)).collect();
            let b = rng.random_range(0..4usize);
            let t: Vec<f32> =
                (0..2 * PROP_WAYPOINTS).map(|_| rng.random_range(-1.5f32..1.5)).collect();
            let w = rng.random_range(0.25f32..3.0);
            (x, b, t, w)
        })
        .collect();
    (policy, data)
}

fn as_samples(data: &OwnedBatch) -> Vec<PolicySample<'_>> {
    data.iter()
        .map(|(x, b, t, w)| PolicySample { input: x, branch: *b, target: t, weight: *w })
        .collect()
}

/// One batched gradient pass: shard (serially, in shard order `order`),
/// reduce, return `(loss_sum, weight_sum)` with the gradient left in
/// `scratch.grad()`.
fn live_batch_grad(
    policy: &BranchedPolicy,
    samples: &[PolicySample<'_>],
    scratch: &mut TrainScratch,
    reverse_shard_order: bool,
) -> (f32, f32) {
    let n = samples.len();
    let shards = scratch.shards_mut(n);
    let k = shards.len();
    for step in 0..k {
        let s = if reverse_shard_order { k - 1 - step } else { step };
        policy.train_shard(samples, s * SHARD, &mut shards[s]);
    }
    let out = policy.reduce_shards(scratch, n);
    (out.loss_sum, out.weight_sum)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_forward_matches_reference_bits(seed in 0u64..1 << 48, n in 1usize..24) {
        let (policy, data) = seeded_policy_and_batch(seed, n);
        let mut scratch = TrainScratch::new();
        let mut out = Vec::new();
        for (x, b, _, _) in &data {
            policy.forward_into(x, *b, &mut out, &mut scratch);
            let reference = vnn::reference::policy_forward(&policy, x, *b);
            prop_assert_eq!(bits(&out), bits(&reference));
        }
    }

    #[test]
    fn batched_backward_matches_reference_bits(seed in 0u64..1 << 48, n in 1usize..48) {
        let (policy, data) = seeded_policy_and_batch(seed, n);
        let samples = as_samples(&data);
        let mut scratch = TrainScratch::new();
        let (loss_sum, weight_sum) =
            live_batch_grad(&policy, &samples, &mut scratch, false);
        let mut ref_grad = vec![0.0f32; policy.param_count()];
        let (ref_loss, ref_weight) =
            vnn::reference::batch_loss_and_grad(&policy, &samples[..], &mut ref_grad);
        prop_assert_eq!(loss_sum.to_bits(), ref_loss.to_bits());
        prop_assert_eq!(weight_sum.to_bits(), ref_weight.to_bits());
        prop_assert_eq!(bits(scratch.grad()), bits(&ref_grad));
    }

    #[test]
    fn shard_processing_order_is_immaterial(seed in 0u64..1 << 48, n in 17usize..48) {
        // Shard contents depend only on the batch; processing shards in
        // reverse order (a stand-in for any parallel schedule) must leave
        // identical bits after the fixed-order reduction.
        let (policy, data) = seeded_policy_and_batch(seed, n);
        let samples = as_samples(&data);
        let mut fwd = TrainScratch::new();
        let mut rev = TrainScratch::new();
        let a = live_batch_grad(&policy, &samples, &mut fwd, false);
        let b = live_batch_grad(&policy, &samples, &mut rev, true);
        prop_assert_eq!(a.0.to_bits(), b.0.to_bits());
        prop_assert_eq!(bits(fwd.grad()), bits(rev.grad()));
    }

    #[test]
    fn dirty_scratch_reuse_is_bit_identical(seed in 0u64..1 << 48, n in 1usize..20) {
        // Dirty the arena with a larger, different batch first; the target
        // batch must then produce the same bits as a fresh arena.
        let (policy, data) = seeded_policy_and_batch(seed, n);
        let (_, decoy) = seeded_policy_and_batch(seed ^ 0xDEAD_BEEF, n + 13);
        let samples = as_samples(&data);
        let decoy_samples = as_samples(&decoy);
        let mut dirty = TrainScratch::new();
        live_batch_grad(&policy, &decoy_samples, &mut dirty, false);
        let a = live_batch_grad(&policy, &samples, &mut dirty, false);
        let mut fresh = TrainScratch::new();
        let b = live_batch_grad(&policy, &samples, &mut fresh, false);
        prop_assert_eq!(a.0.to_bits(), b.0.to_bits());
        prop_assert_eq!(bits(dirty.grad()), bits(fresh.grad()));
        // A repeat of the same batch cannot grow any buffer, so it must be
        // counted as a scratch reuse (the decoy/target passes may legitimately
        // grow per-branch head buffers).
        live_batch_grad(&policy, &samples, &mut dirty, false);
        let stats = dirty.take_stats();
        prop_assert_eq!(stats.batches, 3);
        prop_assert!(stats.scratch_reuse >= 1);
    }

    #[test]
    fn full_adam_epoch_matches_reference_bits(seed in 0u64..1 << 48, n in 1usize..40) {
        // A whole training epoch — batched kernels + fused scaled Adam step,
        // scratch reused across steps — against the reference composition
        // with a separate gradient-scaling pass.
        let (policy, data) = seeded_policy_and_batch(seed, n);
        let samples = as_samples(&data);
        let mut live = policy.clone();
        let mut reference = policy;
        let mut live_opt = Adam::new(3e-3);
        let mut ref_opt = Adam::new(3e-3);
        let mut scratch = TrainScratch::new();
        let mut ref_grad = vec![0.0f32; reference.param_count()];
        for _ in 0..4 {
            let (loss, weight) = live_batch_grad(&live, &samples, &mut scratch, false);
            let inv = 1.0 / weight;
            live_opt.step_scaled(live.params_mut().as_mut_slice(), scratch.grad(), inv);
            ref_grad.fill(0.0);
            let (ref_loss, ref_weight) =
                vnn::reference::batch_loss_and_grad(&reference, &samples[..], &mut ref_grad);
            let ref_inv = 1.0 / ref_weight;
            for g in &mut ref_grad {
                *g *= ref_inv;
            }
            ref_opt.step(reference.params_mut().as_mut_slice(), &ref_grad);
            prop_assert_eq!(loss.to_bits(), ref_loss.to_bits());
            prop_assert_eq!(
                bits(live.params().as_slice()),
                bits(reference.params().as_slice())
            );
        }
    }
}
