//! Flat parameter vectors.
//!
//! LbChat treats a model as an opaque parameter vector: it sparsifies it
//! (top-k), averages it against peer models, and serializes it onto a
//! simulated radio. [`ParamVec`] is that vector, with the handful of vector
//! operations the rest of the stack needs.

use rand::{Rng, RngExt};

/// A model's parameters as one contiguous `f32` vector.
///
/// All models in this workspace expose their weights through a `ParamVec`, so
/// compression, aggregation, and serialization are model-agnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamVec {
    data: Vec<f32>,
}

impl ParamVec {
    /// Creates a zero-initialized vector of `len` parameters.
    pub fn zeros(len: usize) -> Self {
        Self { data: vec![0.0; len] }
    }

    /// Wraps an existing vector of parameters.
    pub fn from_vec(data: Vec<f32>) -> Self {
        Self { data }
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the raw parameters.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw parameters.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the wrapper and returns the raw vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Fills a segment `[offset, offset + fan_out * (fan_in + 1))` with
    /// Xavier/Glorot-uniform weights for a dense layer (bias zeroed).
    ///
    /// Kept on `ParamVec` so every model built on this crate initializes
    /// identically given the same seed — the paper assumes "the models on
    /// vehicles have the same initialization".
    pub fn xavier_dense<R: Rng + ?Sized>(
        &mut self,
        offset: usize,
        fan_in: usize,
        fan_out: usize,
        rng: &mut R,
    ) {
        let bound = (6.0f32 / (fan_in + fan_out) as f32).sqrt();
        let w_end = offset + fan_in * fan_out;
        for w in &mut self.data[offset..w_end] {
            *w = rng.random_range(-bound..bound);
        }
        for b in &mut self.data[w_end..w_end + fan_out] {
            *b = 0.0;
        }
    }

    /// `self += alpha * other`, the BLAS `axpy` primitive used by SGD and
    /// by model aggregation.
    ///
    /// # Panics
    /// Panics if the two vectors have different lengths.
    pub fn axpy(&mut self, alpha: f32, other: &ParamVec) {
        assert_eq!(self.len(), other.len(), "axpy length mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scales every parameter by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Euclidean (L2) norm, used by the structural-risk penalty of Eq. (6).
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| (*x as f64) * (*x as f64)).sum::<f64>().sqrt() as f32
    }

    /// Euclidean distance to another vector — the parameter-space metric of
    /// the continuous-and-bounded (CnB) learning definition (Def. II.1).
    ///
    /// # Panics
    /// Panics if the two vectors have different lengths.
    pub fn distance(&self, other: &ParamVec) -> f32 {
        assert_eq!(self.len(), other.len(), "distance length mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| {
                let d = (*a - *b) as f64;
                d * d
            })
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Returns the convex combination `w_a * a + w_b * b` with weights
    /// normalized to sum to one — the primitive behind Eq. (8) aggregation.
    ///
    /// # Panics
    /// Panics if lengths differ or both weights are zero/non-finite.
    pub fn weighted_average(a: &ParamVec, w_a: f32, b: &ParamVec, w_b: f32) -> ParamVec {
        assert_eq!(a.len(), b.len(), "weighted_average length mismatch");
        let sum = w_a + w_b;
        assert!(sum > 0.0 && sum.is_finite(), "weights must be positive and finite");
        let (wa, wb) = (w_a / sum, w_b / sum);
        let data = a
            .data
            .iter()
            .zip(&b.data)
            .map(|(x, y)| wa * x + wb * y)
            .collect();
        Self { data }
    }
}

impl AsRef<[f32]> for ParamVec {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

impl From<Vec<f32>> for ParamVec {
    fn from(data: Vec<f32>) -> Self {
        Self { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zeros_is_zero() {
        let p = ParamVec::zeros(5);
        assert_eq!(p.len(), 5);
        assert!(p.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(p.l2_norm(), 0.0);
    }

    #[test]
    fn xavier_bounds_respected() {
        let mut p = ParamVec::zeros(4 * 3 + 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        p.xavier_dense(0, 4, 3, &mut rng);
        let bound = (6.0f32 / 7.0).sqrt();
        for &w in &p.as_slice()[..12] {
            assert!(w.abs() <= bound);
        }
        // bias zeroed
        assert!(p.as_slice()[12..].iter().all(|&b| b == 0.0));
    }

    #[test]
    fn xavier_deterministic_per_seed() {
        let mut a = ParamVec::zeros(20);
        let mut b = ParamVec::zeros(20);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(42);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(42);
        a.xavier_dense(0, 4, 4, &mut r1);
        b.xavier_dense(0, 4, 4, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn axpy_adds_scaled() {
        let mut a = ParamVec::from_vec(vec![1.0, 2.0]);
        let b = ParamVec::from_vec(vec![10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
    }

    #[test]
    fn weighted_average_normalizes() {
        let a = ParamVec::from_vec(vec![0.0, 0.0]);
        let b = ParamVec::from_vec(vec![4.0, 8.0]);
        let avg = ParamVec::weighted_average(&a, 1.0, &b, 3.0);
        assert_eq!(avg.as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn distance_is_euclidean() {
        let a = ParamVec::from_vec(vec![0.0, 3.0]);
        let b = ParamVec::from_vec(vec![4.0, 0.0]);
        assert!((a.distance(&b) - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "axpy length mismatch")]
    fn axpy_length_mismatch_panics() {
        let mut a = ParamVec::zeros(2);
        let b = ParamVec::zeros(3);
        a.axpy(1.0, &b);
    }
}
