//! Wire serialization for parameter vectors.
//!
//! Dense little-endian `f32` encoding plus the sparse index–value encoding
//! the paper uses for top-k-compressed models ("when k is small, we can
//! represent a compressed model by index-value pairs").

use crate::param::ParamVec;

/// Bytes per dense parameter on the wire.
pub const BYTES_PER_PARAM: usize = 4;
/// Bytes per sparse (index, value) pair: u32 index + f32 value.
pub const BYTES_PER_PAIR: usize = 8;

/// Serializes the full vector as little-endian `f32`s.
pub fn to_dense_bytes(p: &ParamVec) -> Vec<u8> {
    let mut out = Vec::with_capacity(p.len() * BYTES_PER_PARAM);
    for v in p.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Parses a dense little-endian `f32` encoding.
///
/// Returns `None` if the byte length is not a multiple of 4.
pub fn from_dense_bytes(bytes: &[u8]) -> Option<ParamVec> {
    if bytes.len() % BYTES_PER_PARAM != 0 {
        return None;
    }
    let data = bytes
        .chunks_exact(BYTES_PER_PARAM)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Some(ParamVec::from_vec(data))
}

/// A sparse model: the k surviving (index, value) pairs of a top-k
/// sparsification plus the dense length, enough to reconstruct a dense
/// vector with zeros elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseModel {
    /// Dense length of the original vector.
    pub dense_len: usize,
    /// Indices of retained components, strictly increasing.
    pub indices: Vec<u32>,
    /// Values of retained components, parallel to `indices`.
    pub values: Vec<f32>,
}

impl SparseModel {
    /// Builds a sparse model from parallel index/value lists.
    ///
    /// # Panics
    /// Panics if the lists have different lengths or any index is out of
    /// range.
    pub fn new(dense_len: usize, indices: Vec<u32>, values: Vec<f32>) -> Self {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        assert!(
            indices.iter().all(|&i| (i as usize) < dense_len),
            "sparse index out of range"
        );
        Self { dense_len, indices, values }
    }

    /// Number of retained components.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Size on the wire in bytes (pairs only; the envelope is negligible).
    pub fn wire_bytes(&self) -> usize {
        self.nnz() * BYTES_PER_PAIR
    }

    /// Densifies back to a full vector with zeros at dropped positions.
    pub fn to_dense(&self) -> ParamVec {
        let mut data = vec![0.0f32; self.dense_len];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            data[i as usize] = v;
        }
        ParamVec::from_vec(data)
    }

    /// Serializes as `[u32 index, f32 value]*` little-endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_bytes());
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parses the `[u32, f32]*` encoding produced by [`SparseModel::to_bytes`].
    ///
    /// Returns `None` on malformed input (bad length or out-of-range index).
    pub fn from_bytes(dense_len: usize, bytes: &[u8]) -> Option<Self> {
        if bytes.len() % BYTES_PER_PAIR != 0 {
            return None;
        }
        let n = bytes.len() / BYTES_PER_PAIR;
        let mut indices = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        for c in bytes.chunks_exact(BYTES_PER_PAIR) {
            let i = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            if i as usize >= dense_len {
                return None;
            }
            indices.push(i);
            values.push(f32::from_le_bytes([c[4], c[5], c[6], c[7]]));
        }
        Some(Self { dense_len, indices, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip() {
        let p = ParamVec::from_vec(vec![1.5, -2.25, 0.0, f32::MIN_POSITIVE]);
        let bytes = to_dense_bytes(&p);
        assert_eq!(bytes.len(), 16);
        assert_eq!(from_dense_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn dense_rejects_ragged_length() {
        assert!(from_dense_bytes(&[0u8; 7]).is_none());
    }

    #[test]
    fn sparse_roundtrip() {
        let s = SparseModel::new(10, vec![1, 4, 9], vec![0.5, -1.0, 2.0]);
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), 24);
        assert_eq!(SparseModel::from_bytes(10, &bytes).unwrap(), s);
    }

    #[test]
    fn sparse_densify() {
        let s = SparseModel::new(4, vec![0, 3], vec![1.0, 2.0]);
        assert_eq!(s.to_dense().as_slice(), &[1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn sparse_rejects_out_of_range_index() {
        let s = SparseModel::new(100, vec![99], vec![1.0]);
        let bytes = s.to_bytes();
        assert!(SparseModel::from_bytes(50, &bytes).is_none());
    }

    #[test]
    #[should_panic(expected = "sparse index out of range")]
    fn constructor_validates_indices() {
        let _ = SparseModel::new(3, vec![3], vec![1.0]);
    }
}
