//! Wire serialization for parameter vectors.
//!
//! Dense little-endian `f32` encoding plus the sparse index–value encoding
//! the paper uses for top-k-compressed models ("when k is small, we can
//! represent a compressed model by index-value pairs").

use crate::param::ParamVec;

/// Bytes per dense parameter on the wire.
pub const BYTES_PER_PARAM: usize = 4;
/// Bytes per sparse (index, value) pair: u32 index + f32 value.
pub const BYTES_PER_PAIR: usize = 8;

/// A decode failure, shared by every wire format in the workspace (this
/// module's model encodings and the driving crate's frame encodings), so
/// transport code handles malformed payloads uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer length is impossible for the encoding.
    BadLength {
        /// The rejected length in bytes.
        got: usize,
        /// What the encoding requires of the length.
        expected: &'static str,
    },
    /// The format's magic byte did not match.
    BadMagic {
        /// The byte found where the magic was expected.
        got: u8,
    },
    /// A decoded value is outside its valid domain.
    BadValue {
        /// Which field was out of domain.
        field: &'static str,
        /// The rejected value (widened to u32).
        got: u32,
    },
    /// The buffer ended in the middle of a record.
    Truncated,
    /// Decoding completed with unconsumed bytes left over.
    Trailing {
        /// How many bytes were left.
        extra: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadLength { got, expected } => {
                write!(f, "bad payload length {got}: expected {expected}")
            }
            WireError::BadMagic { got } => write!(f, "bad magic byte {got:#04x}"),
            WireError::BadValue { field, got } => {
                write!(f, "{field} out of domain: {got}")
            }
            WireError::Truncated => write!(f, "payload truncated mid-record"),
            WireError::Trailing { extra } => {
                write!(f, "{extra} unconsumed bytes after payload")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian byte cursor over an encoded buffer.
///
/// Decoders pull typed fields in layout order — a missing byte surfaces as
/// [`WireError::Truncated`] at the exact field that ran dry — and call
/// [`WireReader::finish`] at the end to reject trailing garbage. Shared by
/// the model codecs in `lbchat::compress` and the driving frame decoders.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Consumes `n` raw bytes.
    ///
    /// # Errors
    /// [`WireError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// Consumes one byte.
    ///
    /// # Errors
    /// [`WireError::Truncated`] at end of buffer.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Consumes a little-endian `u16`.
    ///
    /// # Errors
    /// [`WireError::Truncated`] if fewer than 2 bytes remain.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let c = self.take(2)?;
        Ok(u16::from_le_bytes([c[0], c[1]]))
    }

    /// Consumes a little-endian `u32`.
    ///
    /// # Errors
    /// [`WireError::Truncated`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let c = self.take(4)?;
        Ok(u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
    }

    /// Consumes a little-endian `f32`.
    ///
    /// # Errors
    /// [`WireError::Truncated`] if fewer than 4 bytes remain.
    pub fn f32(&mut self) -> Result<f32, WireError> {
        let c = self.take(4)?;
        Ok(f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Asserts the buffer is fully consumed.
    ///
    /// # Errors
    /// [`WireError::Trailing`] with the leftover count otherwise.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            extra => Err(WireError::Trailing { extra }),
        }
    }
}

/// Serializes the full vector as little-endian `f32`s.
pub fn to_dense_bytes(p: &ParamVec) -> Vec<u8> {
    let mut out = Vec::with_capacity(p.len() * BYTES_PER_PARAM);
    for v in p.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Parses a dense little-endian `f32` encoding.
///
/// # Errors
/// [`WireError::BadLength`] if the byte length is not a multiple of 4.
pub fn from_dense_bytes(bytes: &[u8]) -> Result<ParamVec, WireError> {
    if bytes.len() % BYTES_PER_PARAM != 0 {
        return Err(WireError::BadLength {
            got: bytes.len(),
            expected: "a multiple of 4 (dense f32 parameters)",
        });
    }
    let data = bytes
        .chunks_exact(BYTES_PER_PARAM)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(ParamVec::from_vec(data))
}

/// A sparse model: the k surviving (index, value) pairs of a top-k
/// sparsification plus the dense length, enough to reconstruct a dense
/// vector with zeros elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseModel {
    /// Dense length of the original vector.
    pub dense_len: usize,
    /// Indices of retained components, strictly increasing.
    pub indices: Vec<u32>,
    /// Values of retained components, parallel to `indices`.
    pub values: Vec<f32>,
}

impl SparseModel {
    /// Builds a sparse model from parallel index/value lists.
    ///
    /// # Panics
    /// Panics if the lists have different lengths or any index is out of
    /// range.
    pub fn new(dense_len: usize, indices: Vec<u32>, values: Vec<f32>) -> Self {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        assert!(
            indices.iter().all(|&i| (i as usize) < dense_len),
            "sparse index out of range"
        );
        Self { dense_len, indices, values }
    }

    /// Number of retained components.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Size on the wire in bytes (pairs only; the envelope is negligible).
    pub fn wire_bytes(&self) -> usize {
        self.nnz() * BYTES_PER_PAIR
    }

    /// Densifies back to a full vector with zeros at dropped positions.
    pub fn to_dense(&self) -> ParamVec {
        let mut data = vec![0.0f32; self.dense_len];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            data[i as usize] = v;
        }
        ParamVec::from_vec(data)
    }

    /// Serializes as `[u32 index, f32 value]*` little-endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_bytes());
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parses the `[u32, f32]*` encoding produced by [`SparseModel::to_bytes`].
    ///
    /// # Errors
    /// [`WireError::BadLength`] if the byte length is not a multiple of 8;
    /// [`WireError::BadValue`] if any index is outside `dense_len`.
    pub fn from_bytes(dense_len: usize, bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() % BYTES_PER_PAIR != 0 {
            return Err(WireError::BadLength {
                got: bytes.len(),
                expected: "a multiple of 8 (sparse index-value pairs)",
            });
        }
        let n = bytes.len() / BYTES_PER_PAIR;
        let mut indices = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        for c in bytes.chunks_exact(BYTES_PER_PAIR) {
            let i = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            if i as usize >= dense_len {
                return Err(WireError::BadValue { field: "sparse index", got: i });
            }
            indices.push(i);
            values.push(f32::from_le_bytes([c[4], c[5], c[6], c[7]]));
        }
        Ok(Self { dense_len, indices, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip() {
        let p = ParamVec::from_vec(vec![1.5, -2.25, 0.0, f32::MIN_POSITIVE]);
        let bytes = to_dense_bytes(&p);
        assert_eq!(bytes.len(), 16);
        assert_eq!(from_dense_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn dense_rejects_ragged_length() {
        assert!(matches!(
            from_dense_bytes(&[0u8; 7]),
            Err(WireError::BadLength { got: 7, .. })
        ));
    }

    #[test]
    fn sparse_roundtrip() {
        let s = SparseModel::new(10, vec![1, 4, 9], vec![0.5, -1.0, 2.0]);
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), 24);
        assert_eq!(SparseModel::from_bytes(10, &bytes).unwrap(), s);
    }

    #[test]
    fn sparse_densify() {
        let s = SparseModel::new(4, vec![0, 3], vec![1.0, 2.0]);
        assert_eq!(s.to_dense().as_slice(), &[1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn sparse_rejects_out_of_range_index() {
        let s = SparseModel::new(100, vec![99], vec![1.0]);
        let bytes = s.to_bytes();
        assert_eq!(
            SparseModel::from_bytes(50, &bytes),
            Err(WireError::BadValue { field: "sparse index", got: 99 })
        );
    }

    #[test]
    fn sparse_rejects_ragged_length() {
        let s = SparseModel::new(10, vec![1, 4], vec![0.5, -1.0]);
        let mut bytes = s.to_bytes();
        bytes.pop();
        assert!(matches!(
            SparseModel::from_bytes(10, &bytes),
            Err(WireError::BadLength { got: 15, .. })
        ));
    }

    #[test]
    fn wire_error_messages_name_the_problem() {
        let e = WireError::BadValue { field: "sparse index", got: 99 };
        assert!(e.to_string().contains("sparse index"));
        let e = WireError::BadLength { got: 7, expected: "a multiple of 4" };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    #[should_panic(expected = "sparse index out of range")]
    fn constructor_validates_indices() {
        let _ = SparseModel::new(3, vec![3], vec![1.0]);
    }

    #[test]
    fn reader_walks_fields_in_order() {
        let mut buf = vec![0xAB];
        buf.extend_from_slice(&7u32.to_le_bytes());
        buf.extend_from_slice(&1.5f32.to_le_bytes());
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.f32().unwrap(), 1.5);
        assert_eq!(r.finish(), Ok(()));
    }

    #[test]
    fn reader_reports_truncation_and_trailing() {
        let buf = [1u8, 2, 3];
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u32(), Err(WireError::Truncated));
        // A failed read consumes nothing; the bytes are still trailing.
        assert_eq!(r.finish(), Err(WireError::Trailing { extra: 3 }));
        let mut r = WireReader::new(&buf);
        assert_eq!(r.take(3).unwrap(), &[1, 2, 3]);
        assert_eq!(r.u8(), Err(WireError::Truncated));
    }
}
