//! Minibatch index sampling.

use rand::seq::SliceRandom;
use rand::Rng;

/// Cycles through a dataset's indices in shuffled epochs, yielding
/// fixed-size minibatches — the access pattern of the paper's local training
/// loop (batch size 64).
#[derive(Debug, Clone)]
pub struct Minibatcher {
    order: Vec<usize>,
    cursor: usize,
    batch_size: usize,
}

impl Minibatcher {
    /// Creates a batcher over `n` samples.
    ///
    /// # Panics
    /// Panics if `batch_size == 0`.
    pub fn new(n: usize, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self { order: (0..n).collect(), cursor: 0, batch_size }
    }

    /// Number of samples currently covered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the underlying dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Grows the index range to `n` samples (local datasets expand when
    /// coresets are absorbed). Newly added indices join the current epoch.
    pub fn grow(&mut self, n: usize) {
        for i in self.order.len()..n {
            self.order.push(i);
        }
    }

    /// Returns the next minibatch of indices, reshuffling at epoch
    /// boundaries. Returns an empty vector when the dataset is empty; the
    /// final batch of an epoch may be shorter than `batch_size`.
    pub fn next_batch<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<usize> {
        if self.order.is_empty() {
            return Vec::new();
        }
        if self.cursor >= self.order.len() {
            self.order.shuffle(rng);
            self.cursor = 0;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn covers_every_index_each_epoch() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut mb = Minibatcher::new(10, 3);
        let mut seen = vec![0usize; 10];
        for _ in 0..4 {
            // 4 batches of <=3 = one epoch of 10
            for i in mb.next_batch(&mut rng) {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "epoch must cover each index once: {seen:?}");
    }

    #[test]
    fn empty_dataset_yields_empty_batches() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut mb = Minibatcher::new(0, 4);
        assert!(mb.next_batch(&mut rng).is_empty());
    }

    #[test]
    fn grow_adds_new_indices() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut mb = Minibatcher::new(2, 2);
        mb.grow(5);
        assert_eq!(mb.len(), 5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10 {
            for i in mb.next_batch(&mut rng) {
                seen.insert(i);
            }
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn batch_size_respected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut mb = Minibatcher::new(100, 7);
        for _ in 0..50 {
            assert!(mb.next_batch(&mut rng).len() <= 7);
        }
    }
}
