//! Waypoint regression losses.
//!
//! The driving policy predicts the next few waypoints in the ego frame; the
//! paper trains it by imitation against the expert's waypoints. We provide
//! the L1 loss the *Learning by Cheating* agent uses plus smooth-L1 and MSE
//! variants, each with its gradient.

/// Which pointwise loss to apply to each predicted coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LossKind {
    /// Mean absolute error (the paper's choice for waypoints).
    #[default]
    L1,
    /// Huber / smooth-L1 with transition at 1.0.
    SmoothL1,
    /// Mean squared error.
    Mse,
}

impl LossKind {
    /// Pointwise loss value for residual `r = pred - target`.
    #[inline]
    pub fn value(self, r: f32) -> f32 {
        match self {
            LossKind::L1 => r.abs(),
            LossKind::SmoothL1 => {
                if r.abs() < 1.0 {
                    0.5 * r * r
                } else {
                    r.abs() - 0.5
                }
            }
            LossKind::Mse => r * r,
        }
    }

    /// Pointwise derivative w.r.t. the prediction.
    #[inline]
    pub fn grad(self, r: f32) -> f32 {
        match self {
            LossKind::L1 => {
                if r > 0.0 {
                    1.0
                } else if r < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            LossKind::SmoothL1 => r.clamp(-1.0, 1.0),
            LossKind::Mse => 2.0 * r,
        }
    }
}

/// Mean loss over a prediction/target pair of equal length.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn mean_loss(kind: LossKind, pred: &[f32], target: &[f32]) -> f32 {
    assert_eq!(pred.len(), target.len(), "loss length mismatch");
    assert!(!pred.is_empty(), "loss over empty prediction");
    let n = pred.len() as f32;
    pred.iter().zip(target).map(|(p, t)| kind.value(p - t)).sum::<f32>() / n
}

/// Mean loss and its gradient w.r.t. the prediction.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn mean_loss_and_grad(kind: LossKind, pred: &[f32], target: &[f32]) -> (f32, Vec<f32>) {
    let mut grad = vec![0.0f32; pred.len()];
    let loss = mean_loss_and_grad_into(kind, pred, target, &mut grad);
    (loss, grad)
}

/// [`mean_loss_and_grad`] writing the gradient into a caller-owned buffer —
/// the allocation-free form the batched training kernels use. Identical
/// operation order, so results are bit-for-bit the same.
///
/// # Panics
/// Panics if the slices have different lengths, `pred` is empty, or `d_pred`
/// is shorter than `pred`.
pub fn mean_loss_and_grad_into(
    kind: LossKind,
    pred: &[f32],
    target: &[f32],
    d_pred: &mut [f32],
) -> f32 {
    assert_eq!(pred.len(), target.len(), "loss length mismatch");
    assert!(!pred.is_empty(), "loss over empty prediction");
    assert!(d_pred.len() >= pred.len(), "loss gradient buffer too short");
    let n = pred.len() as f32;
    let mut loss = 0.0f32;
    for ((p, t), g) in pred.iter().zip(target).zip(&mut *d_pred) {
        let r = p - t;
        loss += kind.value(r);
        *g = kind.grad(r) / n;
    }
    loss / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_value_and_grad() {
        assert_eq!(LossKind::L1.value(-2.0), 2.0);
        assert_eq!(LossKind::L1.grad(-2.0), -1.0);
        assert_eq!(LossKind::L1.grad(0.0), 0.0);
    }

    #[test]
    fn smooth_l1_is_quadratic_inside_linear_outside() {
        assert!((LossKind::SmoothL1.value(0.5) - 0.125).abs() < 1e-6);
        assert!((LossKind::SmoothL1.value(2.0) - 1.5).abs() < 1e-6);
        assert_eq!(LossKind::SmoothL1.grad(3.0), 1.0);
        assert_eq!(LossKind::SmoothL1.grad(0.25), 0.25);
    }

    #[test]
    fn mse_matches_definition() {
        let l = mean_loss(LossKind::Mse, &[1.0, 2.0], &[0.0, 0.0]);
        assert!((l - 2.5).abs() < 1e-6);
    }

    #[test]
    fn zero_residual_means_zero_loss() {
        for kind in [LossKind::L1, LossKind::SmoothL1, LossKind::Mse] {
            assert_eq!(mean_loss(kind, &[1.0, -1.0], &[1.0, -1.0]), 0.0);
        }
    }

    #[test]
    fn grad_matches_finite_difference() {
        let pred = [0.3f32, -0.8, 1.4];
        let target = [0.0f32, 0.2, 1.0];
        for kind in [LossKind::SmoothL1, LossKind::Mse] {
            let (_, g) = mean_loss_and_grad(kind, &pred, &target);
            let eps = 1e-3;
            for i in 0..pred.len() {
                let mut up = pred;
                up[i] += eps;
                let mut dn = pred;
                dn[i] -= eps;
                let fd = (mean_loss(kind, &up, &target) - mean_loss(kind, &dn, &target))
                    / (2.0 * eps);
                assert!((fd - g[i]).abs() < 1e-2, "{kind:?} idx {i}: {fd} vs {}", g[i]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "loss length mismatch")]
    fn length_mismatch_panics() {
        mean_loss(LossKind::L1, &[1.0], &[1.0, 2.0]);
    }
}
