//! Adam optimizer — an alternative to SGD for local training.
//!
//! The paper trains with SGD; Adam is provided for the extension studies
//! (its per-parameter scaling interacts differently with model averaging,
//! which is exactly the kind of question the ablation benches probe).

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer with the usual defaults (β₁ = 0.9, β₂ = 0.999).
    ///
    /// # Panics
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Creates an optimizer with explicit betas.
    ///
    /// # Panics
    /// Panics if `lr <= 0` or betas are outside `[0, 1)`.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Self { lr, beta1, beta2, eps: 1e-8, m: Vec::new(), v: Vec::new(), t: 0 }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Clears the moment buffers (call after the model is replaced by an
    /// aggregated one).
    pub fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }

    /// Applies one Adam step in place.
    ///
    /// # Panics
    /// Panics if `params` and `grad` lengths differ.
    pub fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len(), "params/grad length mismatch");
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grad[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// [`Adam::step`] with every gradient entry multiplied by `scale` on the
    /// fly — the fused form of "scale the gradient buffer, then step", and
    /// bit-identical to it: `g * scale` rounds exactly as the separate
    /// scaling pass would, and the moment updates are unchanged.
    ///
    /// # Panics
    /// Panics if `params` and `grad` lengths differ.
    pub fn step_scaled(&mut self, params: &mut [f32], grad: &[f32], scale: f32) {
        assert_eq!(params.len(), grad.len(), "params/grad length mismatch");
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grad[i] * scale;
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_is_lr_sized() {
        // With bias correction, the first step is ~lr in the gradient
        // direction regardless of gradient magnitude.
        let mut opt = Adam::new(0.1);
        let mut p = [0.0f32];
        opt.step(&mut p, &[100.0]);
        assert!((p[0] + 0.1).abs() < 1e-4, "{}", p[0]);
        let mut opt = Adam::new(0.1);
        let mut q = [0.0f32];
        opt.step(&mut q, &[0.001]);
        assert!((q[0] + 0.1).abs() < 1e-3, "{}", q[0]);
    }

    #[test]
    fn quadratic_converges() {
        let mut opt = Adam::new(0.05);
        let mut p = [5.0f32];
        for _ in 0..2000 {
            let g = [2.0 * (p[0] - 3.0)];
            opt.step(&mut p, &g);
        }
        assert!((p[0] - 3.0).abs() < 1e-2, "{}", p[0]);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Adam::new(0.1);
        let mut p = [0.0f32];
        opt.step(&mut p, &[1.0]);
        opt.reset();
        let mut q = [0.0f32];
        opt.step(&mut q, &[1.0]);
        assert!((q[0] - p[0]).abs() < 1e-7, "fresh step must match the first ever step");
    }

    #[test]
    fn rosenbrock_descends() {
        // A harder 2-D test: Adam makes consistent progress on Rosenbrock.
        let f = |x: f32, y: f32| (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2);
        let mut opt = Adam::new(0.02);
        let mut p = [-1.0f32, 1.0];
        let start = f(p[0], p[1]);
        for _ in 0..3000 {
            let (x, y) = (p[0], p[1]);
            let g = [
                -2.0 * (1.0 - x) - 400.0 * x * (y - x * x),
                200.0 * (y - x * x),
            ];
            opt.step(&mut p, &g);
        }
        let end = f(p[0], p[1]);
        assert!(end < start * 0.05, "{start} -> {end}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_shapes_panic() {
        let mut opt = Adam::new(0.1);
        let mut p = [0.0f32; 2];
        opt.step(&mut p, &[1.0]);
    }

    #[test]
    fn step_scaled_matches_prescaled_step_bits() {
        let grad = [0.37f32, -1.2, 0.004, 9.5];
        let scale = 0.311f32;
        let prescaled: Vec<f32> = grad.iter().map(|g| g * scale).collect();
        let mut fused = Adam::new(0.05);
        let mut plain = Adam::new(0.05);
        let mut pf = [1.0f32, -2.0, 0.5, 3.0];
        let mut pp = pf;
        for _ in 0..5 {
            fused.step_scaled(&mut pf, &grad, scale);
            plain.step(&mut pp, &prescaled);
        }
        assert_eq!(pf, pp, "fused scaling must be bit-identical");
    }
}
