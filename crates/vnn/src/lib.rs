//! # vnn — a minimal neural-network substrate for vehicular learning
//!
//! This crate is the from-scratch replacement for the PyTorch stack the LbChat
//! paper trains its imitation-learning model with. It provides exactly what the
//! decentralized-training layer above it needs:
//!
//! * [`ParamVec`] — model parameters as one flat `f32` vector, so that top-k
//!   sparsification, weighted averaging, and wire serialization are trivial and
//!   cheap (the operations LbChat performs on peer models).
//! * [`Mlp`] — a dense multi-layer perceptron with manual backpropagation.
//! * [`BranchedPolicy`] — the command-branched driving policy mirroring the
//!   *Learning by Cheating* privileged agent's structure: a shared trunk plus
//!   one waypoint head per high-level command, with the loss masked to the
//!   active branch.
//! * [`Sgd`] — stochastic gradient descent with momentum and weight decay.
//! * [`loss`] — L1 / smooth-L1 / MSE waypoint losses.
//!
//! Everything is deterministic given a seed; no global RNG state is used.
//!
//! ## Example
//!
//! ```
//! use vnn::{BranchedPolicy, PolicySpec, Sgd};
//! use rand::SeedableRng;
//!
//! let spec = PolicySpec { input_dim: 8, trunk: vec![16], n_branches: 4, waypoints: 3, skip_inputs: 0 };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut policy = BranchedPolicy::new(&spec, &mut rng);
//! let mut opt = Sgd::new(1e-2, 0.9, 0.0);
//! let x = vec![0.1; 8];
//! let target = vec![0.5; 6]; // 3 waypoints * (x, y)
//! for _ in 0..200 {
//!     let (l, grad) = policy.loss_and_grad(&x, 1, &target);
//!     assert!(l.is_finite());
//!     opt.step(policy.params_mut().as_mut_slice(), &grad);
//! }
//! let out = policy.forward(&x, 1);
//! assert!((out[0] - 0.5).abs() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adam;
pub mod batch;
pub mod loss;
pub mod mlp;
pub mod param;
pub mod policy;
pub mod reference;
pub mod scratch;
pub mod sgd;
pub mod wire;

pub use adam::Adam;
pub use batch::Minibatcher;
pub use mlp::{Activation, Mlp, MlpSpec};
pub use param::ParamVec;
pub use policy::{BatchOutcome, BatchSource, BranchedPolicy, PolicySample, PolicySpec};
pub use scratch::{MlpScratch, TrainScratch, TrainStats, SHARD};
pub use sgd::Sgd;
pub use wire::WireError;
