//! Stochastic gradient descent with momentum and weight decay.

/// Classic SGD: `v = mu * v + g + wd * p; p -= lr * v`.
///
/// The momentum buffer is lazily sized on the first [`Sgd::step`] call and
/// reset whenever the parameter length changes (e.g. model replacement).
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Creates an optimizer.
    ///
    /// # Panics
    /// Panics if `lr <= 0`, `momentum` is outside `[0, 1)`, or
    /// `weight_decay < 0`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Self { lr, momentum, weight_decay, velocity: Vec::new() }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (e.g. for decay schedules).
    ///
    /// # Panics
    /// Panics if `lr <= 0`.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Clears the momentum buffer. Call after replacing the model parameters
    /// with an aggregated model, so stale velocity does not drag the new
    /// model back toward the old one.
    pub fn reset_momentum(&mut self) {
        self.velocity.clear();
    }

    /// Applies one descent step in place.
    ///
    /// # Panics
    /// Panics if `params` and `grad` lengths differ.
    pub fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len(), "params/grad length mismatch");
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, g), v) in params.iter_mut().zip(grad).zip(&mut self.velocity) {
            let eff = g + self.weight_decay * *p;
            *v = self.momentum * *v + eff;
            *p -= self.lr * *v;
        }
    }

    /// [`Sgd::step`] with every gradient entry multiplied by `scale` on the
    /// fly — the fused form of "scale the gradient buffer, then step", and
    /// bit-identical to it: `g * scale` here rounds exactly as the separate
    /// scaling pass would, and the rest of the update is unchanged.
    ///
    /// Batched training uses this to divide the accumulated weighted
    /// gradient sum by the total sample weight without an extra pass over
    /// the parameter-sized buffer.
    ///
    /// # Panics
    /// Panics if `params` and `grad` lengths differ.
    pub fn step_scaled(&mut self, params: &mut [f32], grad: &[f32], scale: f32) {
        assert_eq!(params.len(), grad.len(), "params/grad length mismatch");
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, g), v) in params.iter_mut().zip(grad).zip(&mut self.velocity) {
            let eff = g * scale + self.weight_decay * *p;
            *v = self.momentum * *v + eff;
            *p -= self.lr * *v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_step() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let mut p = [1.0f32, 2.0];
        opt.step(&mut p, &[1.0, -1.0]);
        assert_eq!(p, [0.9, 2.1]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::new(0.1, 0.5, 0.0);
        let mut p = [0.0f32];
        opt.step(&mut p, &[1.0]); // v=1,   p=-0.1
        opt.step(&mut p, &[1.0]); // v=1.5, p=-0.25
        assert!((p[0] + 0.25).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut opt = Sgd::new(0.1, 0.0, 0.1);
        let mut p = [10.0f32];
        opt.step(&mut p, &[0.0]);
        assert!((p[0] - 9.9).abs() < 1e-6);
    }

    #[test]
    fn reset_momentum_clears_velocity() {
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let mut p = [0.0f32];
        opt.step(&mut p, &[1.0]);
        opt.reset_momentum();
        let mut q = [0.0f32];
        opt.step(&mut q, &[1.0]);
        assert!((q[0] + 0.1).abs() < 1e-6, "fresh step after reset must ignore history");
    }

    #[test]
    fn quadratic_converges() {
        // minimize (p - 3)^2
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let mut p = [0.0f32];
        for _ in 0..200 {
            let g = [2.0 * (p[0] - 3.0)];
            opt.step(&mut p, &g);
        }
        assert!((p[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_panics() {
        let _ = Sgd::new(0.0, 0.0, 0.0);
    }

    #[test]
    fn step_scaled_matches_prescaled_step_bits() {
        let grad = [0.37f32, -1.2, 0.004, 9.5];
        let scale = 0.311f32;
        let prescaled: Vec<f32> = grad.iter().map(|g| g * scale).collect();
        let mut fused = Sgd::new(0.05, 0.9, 1e-4);
        let mut plain = fused.clone();
        let mut pf = [1.0f32, -2.0, 0.5, 3.0];
        let mut pp = pf;
        for _ in 0..5 {
            fused.step_scaled(&mut pf, &grad, scale);
            plain.step(&mut pp, &prescaled);
        }
        assert_eq!(pf, pp, "fused scaling must be bit-identical");
    }
}
