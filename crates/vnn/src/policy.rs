//! The command-branched driving policy.
//!
//! Mirrors the structure of the *Learning by Cheating* privileged agent the
//! paper trains: a shared trunk encodes the BEV features, and one output head
//! per high-level command ("follow", "left", "right", "straight") regresses
//! the next `waypoints` ego-frame waypoints. The loss is masked to the branch
//! of the frame's command, exactly like conditional imitation learning.

use crate::loss::{mean_loss, mean_loss_and_grad, LossKind};
use crate::mlp::{Mlp, MlpSpec};
use crate::param::ParamVec;
use rand::Rng;

/// Architecture of a [`BranchedPolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicySpec {
    /// Dimensionality of the featurized BEV input (plus speed scalar).
    pub input_dim: usize,
    /// Hidden widths of the shared trunk.
    pub trunk: Vec<usize>,
    /// Number of command branches (4 for follow/left/right/straight).
    pub n_branches: usize,
    /// Waypoints each head predicts; the head output size is `2 * waypoints`.
    pub waypoints: usize,
    /// Number of *trailing* input features fed directly into every head as
    /// a skip connection (in addition to the trunk features). Scalar
    /// navigation inputs benefit from skipping the trunk bottleneck.
    pub skip_inputs: usize,
}

impl PolicySpec {
    /// Output size of one branch head.
    pub fn head_dim(&self) -> usize {
        2 * self.waypoints
    }
}

/// A trunk-plus-branches waypoint regressor over a single flat [`ParamVec`].
#[derive(Debug, Clone, PartialEq)]
pub struct BranchedPolicy {
    spec: PolicySpec,
    trunk: Mlp,
    heads: Vec<Mlp>,
    params: ParamVec,
    loss_kind: LossKind,
}

impl BranchedPolicy {
    /// Builds and Xavier-initializes a policy.
    ///
    /// # Panics
    /// Panics if the spec has zero branches or zero waypoints.
    pub fn new<R: Rng + ?Sized>(spec: &PolicySpec, rng: &mut R) -> Self {
        assert!(spec.n_branches > 0, "policy needs at least one branch");
        assert!(spec.waypoints > 0, "policy must predict at least one waypoint");
        let mut trunk_sizes = Vec::with_capacity(spec.trunk.len() + 1);
        trunk_sizes.push(spec.input_dim);
        trunk_sizes.extend_from_slice(&spec.trunk);
        let trunk_out = *trunk_sizes.last().expect("trunk has sizes");
        // The trunk's last hidden layer is its output; hidden activation is
        // applied throughout so heads see nonlinear features. We express this
        // as an MLP whose "output" layer is also ReLU by appending a
        // pass-through: simpler, we make the trunk end at the last hidden
        // width and treat the ReLU of the final layer inside the head input
        // via the trunk spec having >= 2 sizes with identity on its last
        // layer; to keep features nonlinear we add the activation manually in
        // forward below when the trunk has a single layer. To avoid special
        // cases the trunk here always applies ReLU on its last layer by
        // construction: we append a same-width layer only when the trunk
        // would otherwise be linear-ended.
        assert!(
            spec.skip_inputs <= spec.input_dim,
            "skip inputs cannot exceed the input dimension"
        );
        let trunk_spec = MlpSpec::relu(trunk_sizes);
        let trunk = Mlp::new(trunk_spec.clone(), 0);
        let mut offset = trunk_spec.param_count();
        let mut heads = Vec::with_capacity(spec.n_branches);
        for _ in 0..spec.n_branches {
            // A hidden layer per head: command-conditional behaviors (e.g.
            // the bend-into-turn geometry) need more than a linear readout
            // of the shared trunk features. Skip inputs enter here directly.
            let head_spec =
                MlpSpec::relu(vec![trunk_out + spec.skip_inputs, 32, spec.head_dim()]);
            let head = Mlp::new(head_spec, offset);
            offset += head.param_count();
            heads.push(head);
        }
        let mut params = ParamVec::zeros(offset);
        trunk.init(&mut params, rng);
        for h in &heads {
            h.init(&mut params, rng);
        }
        Self { spec: spec.clone(), trunk, heads, params, loss_kind: LossKind::L1 }
    }

    /// The architecture this policy was built with.
    pub fn spec(&self) -> &PolicySpec {
        &self.spec
    }

    /// Selects the pointwise loss (default: L1, as in the paper).
    pub fn set_loss_kind(&mut self, kind: LossKind) {
        self.loss_kind = kind;
    }

    /// The pointwise loss in use.
    pub fn loss_kind(&self) -> LossKind {
        self.loss_kind
    }

    /// Immutable access to the flat parameter vector.
    pub fn params(&self) -> &ParamVec {
        &self.params
    }

    /// Mutable access to the flat parameter vector (used by optimizers and by
    /// model aggregation).
    pub fn params_mut(&mut self) -> &mut ParamVec {
        &mut self.params
    }

    /// Replaces the parameters wholesale (e.g. with an aggregated model).
    ///
    /// # Panics
    /// Panics if `params` has the wrong length.
    pub fn set_params(&mut self, params: ParamVec) {
        assert_eq!(params.len(), self.params.len(), "parameter length mismatch");
        self.params = params;
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Predicts the waypoint vector `[x1, y1, x2, y2, ..]` for `input` under
    /// command branch `branch`.
    ///
    /// # Panics
    /// Panics if `branch >= n_branches` or the input dimension is wrong.
    pub fn forward(&self, input: &[f32], branch: usize) -> Vec<f32> {
        self.forward_with(&self.params, input, branch)
    }

    /// Like [`BranchedPolicy::forward`] but against an arbitrary parameter
    /// vector of the same layout — used to evaluate *compressed* copies of a
    /// model without rebuilding a policy.
    ///
    /// # Panics
    /// Panics if `branch` is out of range or `params` has the wrong length.
    pub fn forward_with(&self, params: &ParamVec, input: &[f32], branch: usize) -> Vec<f32> {
        assert!(branch < self.spec.n_branches, "branch out of range");
        assert_eq!(params.len(), self.params.len(), "parameter length mismatch");
        let trunk_out = self.trunk.forward(params, input);
        // Re-apply the hidden nonlinearity to the trunk output so head inputs
        // are nonlinear features (the trunk's last layer is linear by MLP
        // convention), then append the skip inputs verbatim.
        let mut feats: Vec<f32> =
            trunk_out.output().iter().map(|&v| v.max(0.0)).collect();
        feats.extend_from_slice(&input[input.len() - self.spec.skip_inputs..]);
        let head = &self.heads[branch];
        head.forward(params, &feats).output().to_vec()
    }

    /// Loss of the active branch against `target`, without gradients.
    pub fn loss(&self, input: &[f32], branch: usize, target: &[f32]) -> f32 {
        self.loss_with(&self.params, input, branch, target)
    }

    /// Loss under an arbitrary parameter vector of the same layout.
    pub fn loss_with(
        &self,
        params: &ParamVec,
        input: &[f32],
        branch: usize,
        target: &[f32],
    ) -> f32 {
        let pred = self.forward_with(params, input, branch);
        mean_loss(self.loss_kind, &pred, target)
    }

    /// Loss and full parameter gradient for one sample. The gradient of the
    /// inactive branches is zero (their heads never saw the sample).
    pub fn loss_and_grad(&self, input: &[f32], branch: usize, target: &[f32]) -> (f32, Vec<f32>) {
        assert!(branch < self.spec.n_branches, "branch out of range");
        let mut grad = vec![0.0f32; self.params.len()];
        let trunk_cache = self.trunk.forward(&self.params, input);
        let mut feats: Vec<f32> =
            trunk_cache.output().iter().map(|&v| v.max(0.0)).collect();
        let n_trunk = feats.len();
        feats.extend_from_slice(&input[input.len() - self.spec.skip_inputs..]);
        let head = &self.heads[branch];
        let head_cache = head.forward(&self.params, &feats);
        let pred = head_cache.output();
        let (loss, d_pred) = mean_loss_and_grad(self.loss_kind, pred, target);
        let d_feats = head.backward(&self.params, &head_cache, &d_pred, &mut grad);
        // Backprop through the manual ReLU between trunk and head; the skip
        // tail flows to the (constant) input and is dropped.
        let d_trunk_out: Vec<f32> = d_feats[..n_trunk]
            .iter()
            .zip(trunk_cache.output())
            .map(|(d, &y)| if y > 0.0 { *d } else { 0.0 })
            .collect();
        self.trunk.backward(&self.params, &trunk_cache, &d_trunk_out, &mut grad);
        (loss, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgd::Sgd;
    use rand::SeedableRng;

    fn spec() -> PolicySpec {
        PolicySpec { input_dim: 6, trunk: vec![12, 8], n_branches: 4, waypoints: 3, skip_inputs: 1 }
    }

    #[test]
    fn construction_and_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = BranchedPolicy::new(&spec(), &mut rng);
        let out = p.forward(&[0.0; 6], 0);
        assert_eq!(out.len(), 6); // 3 waypoints * 2
    }

    #[test]
    fn same_seed_same_params() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(5);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(5);
        let a = BranchedPolicy::new(&spec(), &mut r1);
        let b = BranchedPolicy::new(&spec(), &mut r2);
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn branches_are_independent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let p = BranchedPolicy::new(&spec(), &mut rng);
        let x = [0.4f32, -0.1, 0.8, 0.2, -0.6, 0.3];
        let o0 = p.forward(&x, 0);
        let o1 = p.forward(&x, 1);
        assert_ne!(o0, o1, "different heads should predict differently");
    }

    #[test]
    fn inactive_branch_gets_no_gradient() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let p = BranchedPolicy::new(&spec(), &mut rng);
        let x = [0.4f32, -0.1, 0.8, 0.2, -0.6, 0.3];
        let t = vec![0.5f32; 6];
        let (_, grad) = p.loss_and_grad(&x, 2, &t);
        // Head 0 occupies the segment right after the trunk.
        let trunk_params = p.trunk.param_count();
        let head_params = p.heads[0].param_count();
        let head0 = &grad[trunk_params..trunk_params + head_params];
        assert!(head0.iter().all(|&g| g == 0.0), "inactive head must have zero grad");
        let head2_off = trunk_params + 2 * head_params;
        let head2 = &grad[head2_off..head2_off + head_params];
        assert!(head2.iter().any(|&g| g != 0.0), "active head must receive grad");
    }

    #[test]
    fn policy_grad_matches_finite_differences() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut p = BranchedPolicy::new(&spec(), &mut rng);
        p.set_loss_kind(LossKind::Mse); // smooth loss for a clean FD check
        let x = [0.4f32, -0.1, 0.8, 0.2, -0.6, 0.3];
        let t = vec![0.25f32; 6];
        let (_, grad) = p.loss_and_grad(&x, 1, &t);
        let eps = 1e-3f32;
        for i in (0..p.param_count()).step_by(17) {
            let orig = p.params().as_slice()[i];
            p.params_mut().as_mut_slice()[i] = orig + eps;
            let up = p.loss(&x, 1, &t);
            p.params_mut().as_mut_slice()[i] = orig - eps;
            let dn = p.loss(&x, 1, &t);
            p.params_mut().as_mut_slice()[i] = orig;
            let fd = (up - dn) / (2.0 * eps);
            assert!((fd - grad[i]).abs() < 2e-2, "param {i}: {fd} vs {}", grad[i]);
        }
    }

    #[test]
    fn sgd_reduces_loss_on_fixed_sample() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut p = BranchedPolicy::new(&spec(), &mut rng);
        let mut opt = Sgd::new(5e-3, 0.9, 0.0);
        let x = [0.4f32, -0.1, 0.8, 0.2, -0.6, 0.3];
        let t = vec![0.7f32; 6];
        let initial = p.loss(&x, 3, &t);
        for _ in 0..300 {
            let (_, g) = p.loss_and_grad(&x, 3, &t);
            opt.step(p.params_mut().as_mut_slice(), &g);
        }
        let final_loss = p.loss(&x, 3, &t);
        assert!(final_loss < initial * 0.3, "{final_loss} vs initial {initial}");
    }

    #[test]
    fn forward_with_respects_given_params() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let p = BranchedPolicy::new(&spec(), &mut rng);
        let zero = ParamVec::zeros(p.param_count());
        let out = p.forward_with(&zero, &[1.0; 6], 0);
        assert!(out.iter().all(|&y| y == 0.0));
    }

    #[test]
    #[should_panic(expected = "branch out of range")]
    fn branch_out_of_range_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let p = BranchedPolicy::new(&spec(), &mut rng);
        p.forward(&[0.0; 6], 4);
    }
}
