//! The command-branched driving policy.
//!
//! Mirrors the structure of the *Learning by Cheating* privileged agent the
//! paper trains: a shared trunk encodes the BEV features, and one output head
//! per high-level command ("follow", "left", "right", "straight") regresses
//! the next `waypoints` ego-frame waypoints. The loss is masked to the branch
//! of the frame's command, exactly like conditional imitation learning.

use crate::loss::{mean_loss, mean_loss_and_grad, mean_loss_and_grad_into, LossKind};
use crate::mlp::{Mlp, MlpSpec};
use crate::param::ParamVec;
use crate::scratch::{ensure, PolicyShard, TrainScratch, SHARD};
use rand::Rng;

/// One imitation-learning sample as seen by the batched training kernels.
///
/// Borrows its feature and target rows from the caller's dataset, so staging
/// a batch copies each row exactly once (into the scratch arena).
#[derive(Debug, Clone, Copy)]
pub struct PolicySample<'a> {
    /// Featurized BEV input (length `input_dim`).
    pub input: &'a [f32],
    /// Active command branch.
    pub branch: usize,
    /// Expert waypoints (length `head_dim`).
    pub target: &'a [f32],
    /// Sample weight (coreset weight; 1.0 for raw frames).
    pub weight: f32,
}

/// Random access to a minibatch for [`BranchedPolicy::train_shard`].
///
/// `Sync` because shards of one batch may be processed on different worker
/// threads; `at` must be cheap (it is called a handful of times per sample).
pub trait BatchSource: Sync {
    /// Number of samples in the batch.
    fn len(&self) -> usize;

    /// Whether the batch is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th sample.
    fn at(&self, i: usize) -> PolicySample<'_>;
}

impl BatchSource for [PolicySample<'_>] {
    fn len(&self) -> usize {
        <[PolicySample<'_>]>::len(self)
    }

    fn at(&self, i: usize) -> PolicySample<'_> {
        self[i]
    }
}

/// Weighted sums over a full minibatch, produced by
/// [`BranchedPolicy::reduce_shards`]. The weighted mean loss of the batch is
/// `loss_sum / weight_sum`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchOutcome {
    /// `Σ weight · per-sample mean loss`, accumulated in sample order.
    pub loss_sum: f32,
    /// `Σ weight`, accumulated in sample order.
    pub weight_sum: f32,
}

/// Architecture of a [`BranchedPolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicySpec {
    /// Dimensionality of the featurized BEV input (plus speed scalar).
    pub input_dim: usize,
    /// Hidden widths of the shared trunk.
    pub trunk: Vec<usize>,
    /// Number of command branches (4 for follow/left/right/straight).
    pub n_branches: usize,
    /// Waypoints each head predicts; the head output size is `2 * waypoints`.
    pub waypoints: usize,
    /// Number of *trailing* input features fed directly into every head as
    /// a skip connection (in addition to the trunk features). Scalar
    /// navigation inputs benefit from skipping the trunk bottleneck.
    pub skip_inputs: usize,
}

impl PolicySpec {
    /// Output size of one branch head.
    pub fn head_dim(&self) -> usize {
        2 * self.waypoints
    }
}

/// A trunk-plus-branches waypoint regressor over a single flat [`ParamVec`].
#[derive(Debug, Clone, PartialEq)]
pub struct BranchedPolicy {
    spec: PolicySpec,
    trunk: Mlp,
    heads: Vec<Mlp>,
    params: ParamVec,
    loss_kind: LossKind,
}

impl BranchedPolicy {
    /// Builds and Xavier-initializes a policy.
    ///
    /// # Panics
    /// Panics if the spec has zero branches or zero waypoints.
    pub fn new<R: Rng + ?Sized>(spec: &PolicySpec, rng: &mut R) -> Self {
        assert!(spec.n_branches > 0, "policy needs at least one branch");
        assert!(spec.waypoints > 0, "policy must predict at least one waypoint");
        let mut trunk_sizes = Vec::with_capacity(spec.trunk.len() + 1);
        trunk_sizes.push(spec.input_dim);
        trunk_sizes.extend_from_slice(&spec.trunk);
        let trunk_out = *trunk_sizes.last().expect("trunk has sizes");
        // The trunk's last hidden layer is its output; hidden activation is
        // applied throughout so heads see nonlinear features. We express this
        // as an MLP whose "output" layer is also ReLU by appending a
        // pass-through: simpler, we make the trunk end at the last hidden
        // width and treat the ReLU of the final layer inside the head input
        // via the trunk spec having >= 2 sizes with identity on its last
        // layer; to keep features nonlinear we add the activation manually in
        // forward below when the trunk has a single layer. To avoid special
        // cases the trunk here always applies ReLU on its last layer by
        // construction: we append a same-width layer only when the trunk
        // would otherwise be linear-ended.
        assert!(
            spec.skip_inputs <= spec.input_dim,
            "skip inputs cannot exceed the input dimension"
        );
        let trunk_spec = MlpSpec::relu(trunk_sizes);
        let trunk = Mlp::new(trunk_spec.clone(), 0);
        let mut offset = trunk_spec.param_count();
        let mut heads = Vec::with_capacity(spec.n_branches);
        for _ in 0..spec.n_branches {
            // A hidden layer per head: command-conditional behaviors (e.g.
            // the bend-into-turn geometry) need more than a linear readout
            // of the shared trunk features. Skip inputs enter here directly.
            let head_spec =
                MlpSpec::relu(vec![trunk_out + spec.skip_inputs, 32, spec.head_dim()]);
            let head = Mlp::new(head_spec, offset);
            offset += head.param_count();
            heads.push(head);
        }
        let mut params = ParamVec::zeros(offset);
        trunk.init(&mut params, rng);
        for h in &heads {
            h.init(&mut params, rng);
        }
        Self { spec: spec.clone(), trunk, heads, params, loss_kind: LossKind::L1 }
    }

    /// The architecture this policy was built with.
    pub fn spec(&self) -> &PolicySpec {
        &self.spec
    }

    /// Selects the pointwise loss (default: L1, as in the paper).
    pub fn set_loss_kind(&mut self, kind: LossKind) {
        self.loss_kind = kind;
    }

    /// The pointwise loss in use.
    pub fn loss_kind(&self) -> LossKind {
        self.loss_kind
    }

    /// Immutable access to the flat parameter vector.
    pub fn params(&self) -> &ParamVec {
        &self.params
    }

    /// Mutable access to the flat parameter vector (used by optimizers and by
    /// model aggregation).
    pub fn params_mut(&mut self) -> &mut ParamVec {
        &mut self.params
    }

    /// Replaces the parameters wholesale (e.g. with an aggregated model).
    ///
    /// # Panics
    /// Panics if `params` has the wrong length.
    pub fn set_params(&mut self, params: ParamVec) {
        assert_eq!(params.len(), self.params.len(), "parameter length mismatch");
        self.params = params;
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Predicts the waypoint vector `[x1, y1, x2, y2, ..]` for `input` under
    /// command branch `branch`.
    ///
    /// # Panics
    /// Panics if `branch >= n_branches` or the input dimension is wrong.
    pub fn forward(&self, input: &[f32], branch: usize) -> Vec<f32> {
        self.forward_with(&self.params, input, branch)
    }

    /// Like [`BranchedPolicy::forward`] but against an arbitrary parameter
    /// vector of the same layout — used to evaluate *compressed* copies of a
    /// model without rebuilding a policy.
    ///
    /// # Panics
    /// Panics if `branch` is out of range or `params` has the wrong length.
    pub fn forward_with(&self, params: &ParamVec, input: &[f32], branch: usize) -> Vec<f32> {
        assert!(branch < self.spec.n_branches, "branch out of range");
        assert_eq!(params.len(), self.params.len(), "parameter length mismatch");
        let trunk_out = self.trunk.forward(params, input);
        // Re-apply the hidden nonlinearity to the trunk output so head inputs
        // are nonlinear features (the trunk's last layer is linear by MLP
        // convention), then append the skip inputs verbatim.
        let mut feats: Vec<f32> =
            trunk_out.output().iter().map(|&v| v.max(0.0)).collect();
        feats.extend_from_slice(&input[input.len() - self.spec.skip_inputs..]);
        let head = &self.heads[branch];
        head.forward(params, &feats).output().to_vec()
    }

    /// Loss of the active branch against `target`, without gradients.
    pub fn loss(&self, input: &[f32], branch: usize, target: &[f32]) -> f32 {
        self.loss_with(&self.params, input, branch, target)
    }

    /// Loss under an arbitrary parameter vector of the same layout.
    pub fn loss_with(
        &self,
        params: &ParamVec,
        input: &[f32],
        branch: usize,
        target: &[f32],
    ) -> f32 {
        let pred = self.forward_with(params, input, branch);
        mean_loss(self.loss_kind, &pred, target)
    }

    /// Loss and full parameter gradient for one sample. The gradient of the
    /// inactive branches is zero (their heads never saw the sample).
    pub fn loss_and_grad(&self, input: &[f32], branch: usize, target: &[f32]) -> (f32, Vec<f32>) {
        assert!(branch < self.spec.n_branches, "branch out of range");
        let mut grad = vec![0.0f32; self.params.len()];
        let trunk_cache = self.trunk.forward(&self.params, input);
        let mut feats: Vec<f32> =
            trunk_cache.output().iter().map(|&v| v.max(0.0)).collect();
        let n_trunk = feats.len();
        feats.extend_from_slice(&input[input.len() - self.spec.skip_inputs..]);
        let head = &self.heads[branch];
        let head_cache = head.forward(&self.params, &feats);
        let pred = head_cache.output();
        let (loss, d_pred) = mean_loss_and_grad(self.loss_kind, pred, target);
        let d_feats = head.backward(&self.params, &head_cache, &d_pred, &mut grad);
        // Backprop through the manual ReLU between trunk and head; the skip
        // tail flows to the (constant) input and is dropped.
        let d_trunk_out: Vec<f32> = d_feats[..n_trunk]
            .iter()
            .zip(trunk_cache.output())
            .map(|(d, &y)| if y > 0.0 { *d } else { 0.0 })
            .collect();
        self.trunk.backward(&self.params, &trunk_cache, &d_trunk_out, &mut grad);
        (loss, grad)
    }

    /// The shared trunk network (for the verbatim reference compositions).
    pub(crate) fn trunk(&self) -> &Mlp {
        &self.trunk
    }

    /// The per-command head networks (for the verbatim reference
    /// compositions).
    pub(crate) fn heads(&self) -> &[Mlp] {
        &self.heads
    }

    // ----- batched training ------------------------------------------------

    /// Computes one gradient shard of a weighted minibatch: processes
    /// samples `[start, start + SHARD)` of `src` (clamped to the batch
    /// length) through the batched kernels, leaving the shard's weighted
    /// partial parameter gradient and per-sample losses in `shard`.
    ///
    /// Shards of one batch are independent — run them on any number of
    /// worker threads — and always cover the same fixed sample ranges, so
    /// the reduction in [`BranchedPolicy::reduce_shards`] is bit-identical
    /// for every worker count. The result is also bit-identical to
    /// backpropagating each sample alone and folding the weighted gradients
    /// in sample order (the [`crate::reference`] composition): see
    /// [`Mlp::backward_batch`] for the accumulation-order argument.
    ///
    /// # Panics
    /// Panics if `start` is outside the batch, a sample's input/target
    /// dimension is wrong, or a branch index is out of range.
    pub fn train_shard<S: BatchSource + ?Sized>(
        &self,
        src: &S,
        start: usize,
        shard: &mut PolicyShard,
    ) {
        assert!(start < src.len(), "shard start out of range");
        let n = (src.len() - start).min(SHARD);
        let input_dim = self.spec.input_dim;
        let skip = self.spec.skip_inputs;
        let head_dim = self.spec.head_dim();
        let nb = self.spec.n_branches;
        let plen = self.params.len();
        let mut grew = false;

        // Per-sample metadata buffers.
        grew |= ensure(&mut shard.weights, n);
        grew |= ensure(&mut shard.losses, n);
        if shard.branches.len() < n {
            grew |= shard.branches.capacity() < n;
            shard.branches.resize(n, 0);
        }
        if shard.order.len() < n {
            grew |= shard.order.capacity() < n;
            shard.order.resize(n, 0);
        }
        if shard.counts.len() < nb {
            grew |= shard.counts.capacity() < nb;
            shard.counts.resize(nb, 0);
        }

        // Stage the trunk inputs and run the shared trunk over the shard.
        let staged = self.trunk.stage_batch(&mut shard.trunk, n);
        for k in 0..n {
            let s = src.at(start + k);
            assert_eq!(s.input.len(), input_dim, "input dimension mismatch");
            assert!(s.branch < nb, "branch out of range");
            staged[k * input_dim..(k + 1) * input_dim].copy_from_slice(s.input);
            shard.weights[k] = s.weight;
            shard.branches[k] = s.branch;
        }
        self.trunk.forward_batch(&self.params, &mut shard.trunk, n);

        // Head-input rows: ReLU of the trunk output plus the skip tail,
        // exactly as in the per-sample path.
        let trunk_out_dim = self.trunk.spec().output_dim();
        let feat_dim = trunk_out_dim + skip;
        grew |= ensure(&mut shard.feats, n * feat_dim);
        grew |= ensure(&mut shard.d_feats, n * feat_dim);
        let trunk_y = self.trunk.batch_outputs(&shard.trunk, n);
        for k in 0..n {
            let y = &trunk_y[k * trunk_out_dim..(k + 1) * trunk_out_dim];
            let frow = &mut shard.feats[k * feat_dim..(k + 1) * feat_dim];
            for (f, &v) in frow.iter_mut().zip(y) {
                *f = v.max(0.0);
            }
            frow[trunk_out_dim..].copy_from_slice(&src.at(start + k).input[input_dim - skip..]);
        }

        // Group local sample indices by branch (stable, ascending within
        // each group) with a counting sort; `counts[br]` ends up holding the
        // END offset of group `br` inside `order`.
        shard.counts[..nb].fill(0);
        for &br in &shard.branches[..n] {
            shard.counts[br] += 1;
        }
        let mut base = 0usize;
        for c in &mut shard.counts[..nb] {
            let cnt = *c;
            *c = base;
            base += cnt;
        }
        for k in 0..n {
            let br = shard.branches[k];
            shard.order[shard.counts[br]] = k;
            shard.counts[br] += 1;
        }

        // This shard's weighted partial gradient accumulates from +0.0.
        grew |= ensure(&mut shard.grad, plen);
        shard.grad[..plen].fill(0.0);

        // One batched pass per populated command head.
        let mut group_start = 0usize;
        for br in 0..nb {
            let group_end = shard.counts[br];
            let m = group_end - group_start;
            if m > 0 {
                let head = &self.heads[br];
                grew |= ensure(&mut shard.head_w, m);
                let h_staged = head.stage_batch(&mut shard.head, m);
                for (local, &k) in shard.order[group_start..group_end].iter().enumerate() {
                    h_staged[local * feat_dim..(local + 1) * feat_dim]
                        .copy_from_slice(&shard.feats[k * feat_dim..(k + 1) * feat_dim]);
                    shard.head_w[local] = shard.weights[k];
                }
                head.forward_batch(&self.params, &mut shard.head, m);
                let (preds, d_out) = head.batch_outputs_and_d_out(&mut shard.head, m);
                for (local, &k) in shard.order[group_start..group_end].iter().enumerate() {
                    let s = src.at(start + k);
                    let pred = &preds[local * head_dim..(local + 1) * head_dim];
                    let d = &mut d_out[local * head_dim..(local + 1) * head_dim];
                    shard.losses[k] = mean_loss_and_grad_into(self.loss_kind, pred, s.target, d);
                }
                head.backward_batch(
                    &self.params,
                    &mut shard.head,
                    m,
                    &shard.head_w[..m],
                    &mut shard.grad,
                );
                let d_in = head.batch_d_input(&shard.head, m);
                for (local, &k) in shard.order[group_start..group_end].iter().enumerate() {
                    shard.d_feats[k * feat_dim..(k + 1) * feat_dim]
                        .copy_from_slice(&d_in[local * feat_dim..(local + 1) * feat_dim]);
                }
            }
            group_start = group_end;
        }

        // Backprop through the manual ReLU between trunk and head — masked
        // on the RAW trunk output, as in the per-sample path — then through
        // the trunk for the whole shard.
        let (trunk_y, trunk_d) = self.trunk.batch_outputs_and_d_out(&mut shard.trunk, n);
        for k in 0..n {
            let y = &trunk_y[k * trunk_out_dim..(k + 1) * trunk_out_dim];
            let dfe = &shard.d_feats[k * feat_dim..k * feat_dim + trunk_out_dim];
            let drow = &mut trunk_d[k * trunk_out_dim..(k + 1) * trunk_out_dim];
            for ((dt, d), &yv) in drow.iter_mut().zip(dfe).zip(y) {
                *dt = if yv > 0.0 { *d } else { 0.0 };
            }
        }
        self.trunk.backward_batch(
            &self.params,
            &mut shard.trunk,
            n,
            &shard.weights[..n],
            &mut shard.grad,
        );

        shard.len = n;
        grew |= shard.trunk.take_grew();
        grew |= shard.head.take_grew();
        shard.grew = grew;
    }

    /// Reduces the shards of an `n`-sample batch (each filled by
    /// [`BranchedPolicy::train_shard`]) into the arena's gradient buffer —
    /// partials added in shard order on the calling thread — and returns
    /// the weighted loss/weight sums accumulated in global sample order.
    /// Updates the arena's [`crate::TrainStats`].
    pub fn reduce_shards(&self, scratch: &mut TrainScratch, n: usize) -> BatchOutcome {
        let plen = self.params.len();
        let k = TrainScratch::shard_count(n);
        let mut grew = ensure(&mut scratch.grad, plen);
        scratch.grad[..plen].fill(0.0);
        let mut loss_sum = 0.0f32;
        let mut weight_sum = 0.0f32;
        for shard in &scratch.shards[..k] {
            for (g, p) in scratch.grad[..plen].iter_mut().zip(&shard.grad[..plen]) {
                *g += *p;
            }
            for (&l, &w) in shard.losses[..shard.len].iter().zip(&shard.weights[..shard.len]) {
                loss_sum += w * l;
                weight_sum += w;
            }
            grew |= shard.grew;
        }
        scratch.stats.batches += 1;
        scratch.stats.samples += n as u64;
        if !grew {
            scratch.stats.scratch_reuse += 1;
        }
        BatchOutcome { loss_sum, weight_sum }
    }

    /// [`BranchedPolicy::forward`] into a caller-owned buffer through the
    /// batched kernels (a batch of one) — bit-identical output, zero
    /// allocation after warmup. Closed-loop rollouts call this every step.
    /// Does not touch the arena's training statistics.
    ///
    /// # Panics
    /// Panics if `branch` is out of range or the input dimension is wrong.
    pub fn forward_into(
        &self,
        input: &[f32],
        branch: usize,
        out: &mut Vec<f32>,
        scratch: &mut TrainScratch,
    ) {
        assert!(branch < self.spec.n_branches, "branch out of range");
        assert_eq!(input.len(), self.spec.input_dim, "input dimension mismatch");
        let shard = &mut scratch.shards_mut(1)[0];
        let staged = self.trunk.stage_batch(&mut shard.trunk, 1);
        staged.copy_from_slice(input);
        self.trunk.forward_batch(&self.params, &mut shard.trunk, 1);
        let trunk_out_dim = self.trunk.spec().output_dim();
        let feat_dim = trunk_out_dim + self.spec.skip_inputs;
        ensure(&mut shard.feats, feat_dim);
        let trunk_y = self.trunk.batch_outputs(&shard.trunk, 1);
        for (f, &v) in shard.feats[..trunk_out_dim].iter_mut().zip(trunk_y) {
            *f = v.max(0.0);
        }
        shard.feats[trunk_out_dim..feat_dim]
            .copy_from_slice(&input[input.len() - self.spec.skip_inputs..]);
        let head = &self.heads[branch];
        let h_staged = head.stage_batch(&mut shard.head, 1);
        h_staged.copy_from_slice(&shard.feats[..feat_dim]);
        head.forward_batch(&self.params, &mut shard.head, 1);
        out.clear();
        out.extend_from_slice(head.batch_outputs(&shard.head, 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgd::Sgd;
    use rand::SeedableRng;

    fn spec() -> PolicySpec {
        PolicySpec { input_dim: 6, trunk: vec![12, 8], n_branches: 4, waypoints: 3, skip_inputs: 1 }
    }

    #[test]
    fn construction_and_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = BranchedPolicy::new(&spec(), &mut rng);
        let out = p.forward(&[0.0; 6], 0);
        assert_eq!(out.len(), 6); // 3 waypoints * 2
    }

    #[test]
    fn same_seed_same_params() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(5);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(5);
        let a = BranchedPolicy::new(&spec(), &mut r1);
        let b = BranchedPolicy::new(&spec(), &mut r2);
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn branches_are_independent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let p = BranchedPolicy::new(&spec(), &mut rng);
        let x = [0.4f32, -0.1, 0.8, 0.2, -0.6, 0.3];
        let o0 = p.forward(&x, 0);
        let o1 = p.forward(&x, 1);
        assert_ne!(o0, o1, "different heads should predict differently");
    }

    #[test]
    fn inactive_branch_gets_no_gradient() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let p = BranchedPolicy::new(&spec(), &mut rng);
        let x = [0.4f32, -0.1, 0.8, 0.2, -0.6, 0.3];
        let t = vec![0.5f32; 6];
        let (_, grad) = p.loss_and_grad(&x, 2, &t);
        // Head 0 occupies the segment right after the trunk.
        let trunk_params = p.trunk.param_count();
        let head_params = p.heads[0].param_count();
        let head0 = &grad[trunk_params..trunk_params + head_params];
        assert!(head0.iter().all(|&g| g == 0.0), "inactive head must have zero grad");
        let head2_off = trunk_params + 2 * head_params;
        let head2 = &grad[head2_off..head2_off + head_params];
        assert!(head2.iter().any(|&g| g != 0.0), "active head must receive grad");
    }

    #[test]
    fn policy_grad_matches_finite_differences() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut p = BranchedPolicy::new(&spec(), &mut rng);
        p.set_loss_kind(LossKind::Mse); // smooth loss for a clean FD check
        let x = [0.4f32, -0.1, 0.8, 0.2, -0.6, 0.3];
        let t = vec![0.25f32; 6];
        let (_, grad) = p.loss_and_grad(&x, 1, &t);
        let eps = 1e-3f32;
        for i in (0..p.param_count()).step_by(17) {
            let orig = p.params().as_slice()[i];
            p.params_mut().as_mut_slice()[i] = orig + eps;
            let up = p.loss(&x, 1, &t);
            p.params_mut().as_mut_slice()[i] = orig - eps;
            let dn = p.loss(&x, 1, &t);
            p.params_mut().as_mut_slice()[i] = orig;
            let fd = (up - dn) / (2.0 * eps);
            assert!((fd - grad[i]).abs() < 2e-2, "param {i}: {fd} vs {}", grad[i]);
        }
    }

    #[test]
    fn sgd_reduces_loss_on_fixed_sample() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut p = BranchedPolicy::new(&spec(), &mut rng);
        let mut opt = Sgd::new(5e-3, 0.9, 0.0);
        let x = [0.4f32, -0.1, 0.8, 0.2, -0.6, 0.3];
        let t = vec![0.7f32; 6];
        let initial = p.loss(&x, 3, &t);
        for _ in 0..300 {
            let (_, g) = p.loss_and_grad(&x, 3, &t);
            opt.step(p.params_mut().as_mut_slice(), &g);
        }
        let final_loss = p.loss(&x, 3, &t);
        assert!(final_loss < initial * 0.3, "{final_loss} vs initial {initial}");
    }

    #[test]
    fn forward_with_respects_given_params() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let p = BranchedPolicy::new(&spec(), &mut rng);
        let zero = ParamVec::zeros(p.param_count());
        let out = p.forward_with(&zero, &[1.0; 6], 0);
        assert!(out.iter().all(|&y| y == 0.0));
    }

    #[test]
    #[should_panic(expected = "branch out of range")]
    fn branch_out_of_range_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let p = BranchedPolicy::new(&spec(), &mut rng);
        p.forward(&[0.0; 6], 4);
    }
}
