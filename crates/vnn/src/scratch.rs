//! Reusable training arenas for the batched kernels.
//!
//! Per-sample training (`Mlp::forward` / `Mlp::backward` /
//! `BranchedPolicy::loss_and_grad`) allocates fresh activation and gradient
//! vectors on every call — fine for a unit test, ruinous for the local
//! training rounds that dominate every experiment's wall-clock. The types
//! here hold all of that state so a minibatch step performs **zero
//! allocations after warmup**:
//!
//! * [`MlpScratch`] — batched per-layer activations plus ping-pong delta
//!   buffers for one [`crate::Mlp`], laid out sample-major
//!   (`acts[l][b * width + j]`).
//! * [`PolicyShard`] — everything one gradient shard of a
//!   [`crate::BranchedPolicy`] minibatch needs: trunk and head scratches,
//!   feature rows, per-sample losses, and the shard's weighted partial
//!   parameter gradient.
//! * [`TrainScratch`] — the full arena: one [`PolicyShard`] per [`SHARD`]
//!   samples plus the reduced gradient, with [`TrainStats`] counters that
//!   back the `train.*` observability counters.
//!
//! ## Determinism contract
//!
//! A minibatch of `n` samples is always split into `ceil(n / SHARD)` shards
//! of [`SHARD`] consecutive samples, **independent of the worker count**.
//! Each shard accumulates its weighted partial gradient in sample order;
//! partials are then reduced in shard order on a single thread. Because the
//! shard structure is a function of `n` alone, running the shards serially
//! or on any number of workers produces bit-identical gradients
//! (`jobs=1 ≡ jobs=4`).

/// Samples per gradient shard. Fixed (not derived from the worker count) so
/// the floating-point reduction tree — and therefore every trained bit — is
/// identical no matter how many threads process the shards.
pub const SHARD: usize = 16;

/// Training-kernel statistics, drained by
/// `Learner::take_train_stats` implementations and emitted by the runtime
/// as the `train.batch` / `train.samples` / `train.scratch_reuse` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrainStats {
    /// Minibatch train steps executed.
    pub batches: u64,
    /// Samples consumed across those batches.
    pub samples: u64,
    /// Batches served entirely from warm scratch buffers (no allocation
    /// anywhere in the step). After the first step at a given batch shape
    /// this should track `batches` one-for-one.
    pub scratch_reuse: u64,
}

impl TrainStats {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: TrainStats) {
        self.batches += other.batches;
        self.samples += other.samples;
        self.scratch_reuse += other.scratch_reuse;
    }

    /// Returns the accumulated stats, resetting `self` to zero.
    pub fn take(&mut self) -> TrainStats {
        std::mem::take(self)
    }
}

/// Grows `buf` to at least `len` elements (zero-filling any new tail) and
/// reports whether the growth required a real allocation.
pub(crate) fn ensure(buf: &mut Vec<f32>, len: usize) -> bool {
    if buf.len() >= len {
        return false;
    }
    let grew = buf.capacity() < len;
    buf.resize(len, 0.0);
    grew
}

/// Batched per-layer activation and delta buffers for one [`crate::Mlp`].
///
/// `acts[l]` holds the batch's activations of layer `l - 1` (`acts[0]` is
/// the staged input), sample-major: row `b` occupies
/// `[b * width, (b + 1) * width)`. The two delta buffers ping-pong through
/// the backward pass; after [`crate::Mlp::backward_batch`] the final swap leaves
/// the input gradients in `delta`.
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    pub(crate) acts: Vec<Vec<f32>>,
    pub(crate) delta: Vec<f32>,
    pub(crate) delta_lower: Vec<f32>,
    pub(crate) grew: bool,
}

impl MlpScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes every buffer for a batch of `n` samples of the given layer
    /// widths, recording whether anything had to allocate.
    pub(crate) fn prepare(&mut self, sizes: &[usize], n: usize) {
        if self.acts.len() < sizes.len() {
            self.acts.resize_with(sizes.len(), Vec::new);
            self.grew = true;
        }
        let mut grew = false;
        for (buf, &w) in self.acts.iter_mut().zip(sizes) {
            grew |= ensure(buf, n * w);
        }
        let wmax = sizes.iter().copied().max().unwrap_or(0);
        grew |= ensure(&mut self.delta, n * wmax);
        grew |= ensure(&mut self.delta_lower, n * wmax);
        self.grew |= grew;
    }

    /// Reads and clears the grew-since-last-check flag.
    pub(crate) fn take_grew(&mut self) -> bool {
        std::mem::replace(&mut self.grew, false)
    }
}

/// The arena for one gradient shard of a policy minibatch: batch scratches
/// for the trunk and the (sequentially processed) branch heads, gathered
/// feature rows, per-sample bookkeeping, and the shard's weighted partial
/// parameter gradient.
#[derive(Debug, Clone, Default)]
pub struct PolicyShard {
    pub(crate) trunk: MlpScratch,
    pub(crate) head: MlpScratch,
    /// Head-input rows (`len × (trunk_out + skip_inputs)`).
    pub(crate) feats: Vec<f32>,
    /// Per-sample head input gradients, scattered back from branch groups.
    pub(crate) d_feats: Vec<f32>,
    /// Per-sample weights, local order.
    pub(crate) weights: Vec<f32>,
    /// Weights gathered for the branch group currently in flight.
    pub(crate) head_w: Vec<f32>,
    /// Per-sample losses, local order.
    pub(crate) losses: Vec<f32>,
    /// Active branch per sample, local order.
    pub(crate) branches: Vec<usize>,
    /// Local sample indices grouped by branch (each group ascending).
    pub(crate) order: Vec<usize>,
    /// Samples per branch for the current minibatch.
    pub(crate) counts: Vec<usize>,
    /// This shard's weighted partial gradient (full parameter length).
    pub(crate) grad: Vec<f32>,
    /// Samples in this shard for the current minibatch.
    pub(crate) len: usize,
    /// Whether any buffer allocated during the current minibatch.
    pub(crate) grew: bool,
}

/// The full training arena for one [`crate::BranchedPolicy`] learner:
/// per-shard buffers, the reduced gradient, and [`TrainStats`] counters.
/// Also serves single-sample forward-only inference
/// ([`crate::BranchedPolicy::forward_into`]) from shard 0's buffers.
#[derive(Debug, Clone, Default)]
pub struct TrainScratch {
    pub(crate) shards: Vec<PolicyShard>,
    pub(crate) grad: Vec<f32>,
    pub(crate) stats: TrainStats,
}

impl TrainScratch {
    /// Creates an empty arena; everything is sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of gradient shards a batch of `n` samples splits into.
    pub fn shard_count(n: usize) -> usize {
        n.div_ceil(SHARD)
    }

    /// Ensures one arena per shard of an `n`-sample batch and returns them,
    /// ready for (possibly parallel) [`crate::BranchedPolicy::train_shard`]
    /// calls — shard `s` must process samples `[s * SHARD, s * SHARD + len)`.
    pub fn shards_mut(&mut self, n: usize) -> &mut [PolicyShard] {
        let k = Self::shard_count(n).max(1);
        if self.shards.len() < k {
            self.shards.resize_with(k, PolicyShard::default);
        }
        &mut self.shards[..k]
    }

    /// The reduced weighted-sum gradient of the last
    /// [`crate::BranchedPolicy::reduce_shards`] call.
    pub fn grad(&self) -> &[f32] {
        &self.grad
    }

    /// Drains the accumulated statistics.
    pub fn take_stats(&mut self) -> TrainStats {
        self.stats.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_rounds_up() {
        assert_eq!(TrainScratch::shard_count(1), 1);
        assert_eq!(TrainScratch::shard_count(SHARD), 1);
        assert_eq!(TrainScratch::shard_count(SHARD + 1), 2);
        assert_eq!(TrainScratch::shard_count(4 * SHARD), 4);
    }

    #[test]
    fn ensure_reports_real_allocations_only() {
        let mut v = Vec::with_capacity(8);
        assert!(!ensure(&mut v, 8), "within capacity is not an allocation");
        assert_eq!(v.len(), 8);
        assert!(ensure(&mut v, 64), "growth past capacity is");
        assert!(!ensure(&mut v, 16), "shrinking requests reuse the buffer");
        assert_eq!(v.len(), 64, "buffers never shrink");
    }

    #[test]
    fn stats_merge_and_take() {
        let mut a = TrainStats { batches: 1, samples: 16, scratch_reuse: 0 };
        a.merge(TrainStats { batches: 2, samples: 32, scratch_reuse: 2 });
        assert_eq!(a, TrainStats { batches: 3, samples: 48, scratch_reuse: 2 });
        assert_eq!(a.take(), TrainStats { batches: 3, samples: 48, scratch_reuse: 2 });
        assert_eq!(a, TrainStats::default());
    }

    #[test]
    fn shards_mut_reuses_arenas() {
        let mut s = TrainScratch::new();
        assert_eq!(s.shards_mut(40).len(), 3);
        let ptr = s.shards_mut(40).as_ptr();
        assert_eq!(s.shards_mut(16).len(), 1, "smaller batches reuse the prefix");
        assert_eq!(s.shards_mut(40).as_ptr(), ptr, "no reallocation on reuse");
    }
}
