//! Dense multi-layer perceptrons with manual backpropagation.
//!
//! The weights of an [`Mlp`] live inside a caller-owned [`ParamVec`] segment,
//! so a model composed of several sub-networks (e.g. the branched policy)
//! still exposes a single flat parameter vector to the compression and
//! aggregation code above.

use crate::param::ParamVec;
use crate::scratch::MlpScratch;
use rand::Rng;

/// Output units per blocked strip of the batched forward pass: a strip of
/// weight rows stays cache-resident while the batch streams through it.
const J_BLOCK: usize = 16;

/// Activation function applied after each hidden layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// No nonlinearity (used for output layers).
    Identity,
}

impl Activation {
    pub(crate) fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the activation *output* `y`.
    pub(crate) fn grad_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Identity => 1.0,
        }
    }
}

/// Architecture of an MLP: layer widths and hidden activation.
///
/// `sizes = [in, h1, .., out]` describes `sizes.len() - 1` dense layers; the
/// hidden layers use `hidden_activation`, the final layer is linear.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpSpec {
    /// Layer widths, input first, output last. Must have at least 2 entries.
    pub sizes: Vec<usize>,
    /// Activation applied after every layer except the last.
    pub hidden_activation: Activation,
}

impl MlpSpec {
    /// Creates a spec with ReLU hidden layers.
    pub fn relu(sizes: Vec<usize>) -> Self {
        Self { sizes, hidden_activation: Activation::Relu }
    }

    /// Total number of parameters (weights + biases) the spec requires.
    pub fn param_count(&self) -> usize {
        self.sizes.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        // audit:allow(P005): documented contract — a spec with no layers is a construction bug, caught by Mlp::new's assert
        *self.sizes.first().expect("spec must have layers")
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        // audit:allow(P005): documented contract — a spec with no layers is a construction bug, caught by Mlp::new's assert
        *self.sizes.last().expect("spec must have layers")
    }
}

/// A dense MLP whose parameters occupy `[offset, offset + param_count)` of a
/// shared flat parameter vector.
///
/// The struct itself stores only the architecture and the offset; weights are
/// read from / written to the `ParamVec` passed to each call. This keeps the
/// single-flat-vector invariant that the decentralized-learning layer relies
/// on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mlp {
    spec: MlpSpec,
    offset: usize,
}

/// Forward-pass activations cached for backpropagation.
#[derive(Debug, Clone)]
pub struct Cache {
    /// `acts[0]` is the input; `acts[l]` the output of layer `l - 1`.
    pub(crate) acts: Vec<Vec<f32>>,
}

impl Cache {
    /// Network output (activation of the final layer).
    pub fn output(&self) -> &[f32] {
        // audit:allow(P005): forward() seeds acts with the input before any layer runs, so the cache is never empty
        self.acts.last().expect("cache holds at least the input")
    }
}

impl Mlp {
    /// Creates an MLP occupying parameters starting at `offset`.
    ///
    /// # Panics
    /// Panics if the spec has fewer than two layer sizes.
    pub fn new(spec: MlpSpec, offset: usize) -> Self {
        assert!(spec.sizes.len() >= 2, "an MLP needs input and output sizes");
        Self { spec, offset }
    }

    /// Architecture of this network.
    pub fn spec(&self) -> &MlpSpec {
        &self.spec
    }

    /// Offset of this network's parameters inside the shared vector.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Number of parameters this network owns.
    pub fn param_count(&self) -> usize {
        self.spec.param_count()
    }

    /// Xavier-initializes this network's segment of `params`.
    pub fn init<R: Rng + ?Sized>(&self, params: &mut ParamVec, rng: &mut R) {
        let mut off = self.offset;
        for w in self.spec.sizes.windows(2) {
            params.xavier_dense(off, w[0], w[1], rng);
            off += w[0] * w[1] + w[1];
        }
    }

    /// Runs the forward pass, returning the cache needed for [`Mlp::backward`].
    ///
    /// # Panics
    /// Panics if `input` length differs from the spec's input size.
    pub fn forward(&self, params: &ParamVec, input: &[f32]) -> Cache {
        assert_eq!(input.len(), self.spec.input_dim(), "input dimension mismatch");
        let p = params.as_slice();
        let n_layers = self.spec.sizes.len() - 1;
        let mut acts = Vec::with_capacity(n_layers + 1);
        acts.push(input.to_vec());
        let mut off = self.offset;
        for (l, w) in self.spec.sizes.windows(2).enumerate() {
            let (fan_in, fan_out) = (w[0], w[1]);
            let weights = &p[off..off + fan_in * fan_out];
            let biases = &p[off + fan_in * fan_out..off + fan_in * fan_out + fan_out];
            // audit:allow(P005): acts starts with the input pushed just above the loop
            let x = acts.last().expect("at least input present");
            let act = if l + 1 == n_layers {
                Activation::Identity
            } else {
                self.spec.hidden_activation
            };
            let mut y = vec![0.0f32; fan_out];
            for (j, yj) in y.iter_mut().enumerate() {
                // weights stored row-major: weight[j * fan_in + i] connects
                // input i to output j.
                let row = &weights[j * fan_in..(j + 1) * fan_in];
                let mut acc = biases[j];
                for (xi, wji) in x.iter().zip(row) {
                    acc += xi * wji;
                }
                *yj = act.apply(acc);
            }
            acts.push(y);
            off += fan_in * fan_out + fan_out;
        }
        Cache { acts }
    }

    /// Backpropagates `d_out` (gradient of the loss w.r.t. the network
    /// output) through the cached forward pass, accumulating parameter
    /// gradients into `grad` (same layout as the parameter vector) and
    /// returning the gradient w.r.t. the input.
    ///
    /// # Panics
    /// Panics if `d_out` length differs from the output size or `grad` is
    /// shorter than the parameter vector.
    pub fn backward(
        &self,
        params: &ParamVec,
        cache: &Cache,
        d_out: &[f32],
        grad: &mut [f32],
    ) -> Vec<f32> {
        assert_eq!(d_out.len(), self.spec.output_dim(), "output gradient dimension mismatch");
        assert!(grad.len() >= self.offset + self.param_count(), "gradient buffer too short");
        let p = params.as_slice();
        let n_layers = self.spec.sizes.len() - 1;

        // Precompute the parameter offset of each layer.
        let mut offsets = Vec::with_capacity(n_layers);
        let mut off = self.offset;
        for w in self.spec.sizes.windows(2) {
            offsets.push(off);
            off += w[0] * w[1] + w[1];
        }

        let mut delta = d_out.to_vec();
        for l in (0..n_layers).rev() {
            let fan_in = self.spec.sizes[l];
            let fan_out = self.spec.sizes[l + 1];
            let act = if l + 1 == n_layers {
                Activation::Identity
            } else {
                self.spec.hidden_activation
            };
            let y = &cache.acts[l + 1];
            let x = &cache.acts[l];
            // delta through the activation
            for (d, yj) in delta.iter_mut().zip(y) {
                *d *= act.grad_from_output(*yj);
            }
            let w_off = offsets[l];
            let b_off = w_off + fan_in * fan_out;
            // parameter gradients
            for j in 0..fan_out {
                let dj = delta[j];
                let row = &mut grad[w_off + j * fan_in..w_off + (j + 1) * fan_in];
                for (g, xi) in row.iter_mut().zip(x) {
                    *g += dj * xi;
                }
                grad[b_off + j] += dj;
            }
            // gradient w.r.t. the layer input
            if l > 0 {
                let weights = &p[w_off..b_off];
                let mut d_in = vec![0.0f32; fan_in];
                for (j, dj) in delta.iter().enumerate() {
                    let row = &weights[j * fan_in..(j + 1) * fan_in];
                    for (di, wji) in d_in.iter_mut().zip(row) {
                        *di += dj * wji;
                    }
                }
                delta = d_in;
            } else {
                let weights = &p[w_off..b_off];
                let mut d_in = vec![0.0f32; fan_in];
                for (j, dj) in delta.iter().enumerate() {
                    let row = &weights[j * fan_in..(j + 1) * fan_in];
                    for (di, wji) in d_in.iter_mut().zip(row) {
                        *di += dj * wji;
                    }
                }
                return d_in;
            }
        }
        unreachable!("loop returns at l == 0");
    }

    // ----- batched kernels -------------------------------------------------
    //
    // The methods below run a whole minibatch through the network using
    // caller-owned [`MlpScratch`] buffers: zero allocation after warmup, and
    // bit-identical outputs/gradients to the per-sample kernels above (which
    // [`crate::reference`] retains verbatim). Identity holds because every
    // per-dot-product order (bias first, then ascending input index) and
    // every per-element accumulation order (ascending sample index,
    // ascending output-unit index) matches the per-sample kernels; batching
    // only reorders work *between* independent accumulators.

    /// The activation applied by layer `l` (hidden activation everywhere
    /// except the final, linear layer).
    fn layer_activation(&self, l: usize) -> Activation {
        if l + 1 == self.spec.sizes.len() - 1 {
            Activation::Identity
        } else {
            self.spec.hidden_activation
        }
    }

    /// Sizes `scratch` for a batch of `n` samples and returns the input
    /// buffer — `n` sample-major rows of `input_dim` floats — for the caller
    /// to fill before [`Mlp::forward_batch`].
    pub fn stage_batch<'s>(&self, scratch: &'s mut MlpScratch, n: usize) -> &'s mut [f32] {
        scratch.prepare(&self.spec.sizes, n);
        &mut scratch.acts[0][..n * self.spec.input_dim()]
    }

    /// Runs the forward pass over the `n` staged input rows, leaving every
    /// layer's activations in `scratch` (read the last with
    /// [`Mlp::batch_outputs`]).
    ///
    /// Bit-identical to `n` calls of [`Mlp::forward`]: each output element
    /// is the same bias-first, ascending-index dot product.
    ///
    /// # Panics
    /// Panics if the batch was not staged via [`Mlp::stage_batch`].
    pub fn forward_batch(&self, params: &ParamVec, scratch: &mut MlpScratch, n: usize) {
        let sizes = &self.spec.sizes;
        assert!(
            scratch.acts.len() >= sizes.len()
                && scratch.acts[0].len() >= n * self.spec.input_dim(),
            "batch not staged"
        );
        let p = params.as_slice();
        let n_layers = sizes.len() - 1;
        let mut off = self.offset;
        for l in 0..n_layers {
            let (fan_in, fan_out) = (sizes[l], sizes[l + 1]);
            let weights = &p[off..off + fan_in * fan_out];
            let biases = &p[off + fan_in * fan_out..off + fan_in * fan_out + fan_out];
            let act = self.layer_activation(l);
            let (lo, hi) = scratch.acts.split_at_mut(l + 1);
            let xs = &lo[l][..n * fan_in];
            let ys = &mut hi[0][..n * fan_out];
            for jb in (0..fan_out).step_by(J_BLOCK) {
                let je = (jb + J_BLOCK).min(fan_out);
                for b in 0..n {
                    let x = &xs[b * fan_in..(b + 1) * fan_in];
                    let yrow = &mut ys[b * fan_out..(b + 1) * fan_out];
                    for j in jb..je {
                        let row = &weights[j * fan_in..(j + 1) * fan_in];
                        let mut acc = biases[j];
                        for (xi, wji) in x.iter().zip(row) {
                            acc += xi * wji;
                        }
                        yrow[j] = act.apply(acc);
                    }
                }
            }
            off += fan_in * fan_out + fan_out;
        }
    }

    /// The final-layer activations of the last [`Mlp::forward_batch`] call:
    /// `n` sample-major rows of `output_dim` floats.
    pub fn batch_outputs<'s>(&self, scratch: &'s MlpScratch, n: usize) -> &'s [f32] {
        &scratch.acts[self.spec.sizes.len() - 1][..n * self.spec.output_dim()]
    }

    /// The output-gradient staging buffer — `n` rows of `output_dim` floats
    /// for the caller to fill before [`Mlp::backward_batch`].
    pub fn stage_d_out<'s>(&self, scratch: &'s mut MlpScratch, n: usize) -> &'s mut [f32] {
        &mut scratch.delta[..n * self.spec.output_dim()]
    }

    /// [`Mlp::batch_outputs`] and [`Mlp::stage_d_out`] in one call, for
    /// callers that derive each sample's output gradient from its output
    /// (e.g. a loss) without cloning either buffer.
    pub fn batch_outputs_and_d_out<'s>(
        &self,
        scratch: &'s mut MlpScratch,
        n: usize,
    ) -> (&'s [f32], &'s mut [f32]) {
        let width = n * self.spec.output_dim();
        let y = &scratch.acts[self.spec.sizes.len() - 1][..width];
        (y, &mut scratch.delta[..width])
    }

    /// Backpropagates the staged output gradients through the activations of
    /// the last [`Mlp::forward_batch`], accumulating each sample's parameter
    /// gradient scaled by its `sample_w` entry into `grad`; the input
    /// gradients are left behind for [`Mlp::batch_d_input`].
    ///
    /// Every gradient element visits samples in ascending order and adds
    /// `w[b] * (delta * x)` with exactly the per-sample kernel's rounding,
    /// so the result is bit-identical to backpropagating each sample alone
    /// and folding the weighted per-sample gradients in sample order (the
    /// [`crate::reference`] composition). Zero deltas — dead ReLU units,
    /// inactive heads — contribute exactly `±0.0` in the per-sample kernel,
    /// which never changes an accumulator that starts at `+0.0`, so they
    /// are skipped outright. Consumes the staged `d_out`; restage before
    /// calling again.
    ///
    /// # Panics
    /// Panics if `sample_w` has fewer than `n` entries or `grad` is shorter
    /// than the parameter vector.
    pub fn backward_batch(
        &self,
        params: &ParamVec,
        scratch: &mut MlpScratch,
        n: usize,
        sample_w: &[f32],
        grad: &mut [f32],
    ) {
        assert!(sample_w.len() >= n, "sample weight length mismatch");
        assert!(grad.len() >= self.offset + self.param_count(), "gradient buffer too short");
        let sizes = &self.spec.sizes;
        let p = params.as_slice();
        let n_layers = sizes.len() - 1;
        let mut layer_end = self.offset + self.param_count();
        for l in (0..n_layers).rev() {
            let (fan_in, fan_out) = (sizes[l], sizes[l + 1]);
            let w_off = layer_end - (fan_in * fan_out + fan_out);
            let b_off = w_off + fan_in * fan_out;
            let act = self.layer_activation(l);
            // Delta through the activation — exact per-element match with
            // the per-sample kernel; `* 1.0` on the linear layer is skipped
            // (multiplying by 1.0 is the identity for every f32 bit pattern).
            if act != Activation::Identity {
                let ys = &scratch.acts[l + 1][..n * fan_out];
                for (d, yj) in scratch.delta[..n * fan_out].iter_mut().zip(ys) {
                    *d *= act.grad_from_output(*yj);
                }
            }
            let xs = &scratch.acts[l][..n * fan_in];
            let deltas = &scratch.delta[..n * fan_out];
            // Weighted parameter gradients, one output unit at a time so the
            // unit's gradient row and bias stay hot across the whole batch.
            let (gw, gb) = grad[w_off..b_off + fan_out].split_at_mut(fan_in * fan_out);
            for j in 0..fan_out {
                let grow = &mut gw[j * fan_in..(j + 1) * fan_in];
                let mut gbias = gb[j];
                for b in 0..n {
                    let dj = deltas[b * fan_out + j];
                    if dj != 0.0 {
                        let wb = sample_w[b];
                        let x = &xs[b * fan_in..(b + 1) * fan_in];
                        for (g, xi) in grow.iter_mut().zip(x) {
                            *g += wb * (dj * xi);
                        }
                        gbias += wb * dj;
                    }
                }
                gb[j] = gbias;
            }
            // Gradient w.r.t. the layer input, ping-ponged into the second
            // delta buffer (ascending-j accumulation, exactly as per sample).
            let weights = &p[w_off..b_off];
            let dl = &mut scratch.delta_lower[..n * fan_in];
            dl.fill(0.0);
            for j in 0..fan_out {
                let wrow = &weights[j * fan_in..(j + 1) * fan_in];
                for b in 0..n {
                    let dj = deltas[b * fan_out + j];
                    if dj != 0.0 {
                        let drow = &mut dl[b * fan_in..(b + 1) * fan_in];
                        for (di, wji) in drow.iter_mut().zip(wrow) {
                            *di += dj * wji;
                        }
                    }
                }
            }
            std::mem::swap(&mut scratch.delta, &mut scratch.delta_lower);
            layer_end = w_off;
        }
    }

    /// The per-sample input gradients computed by the last
    /// [`Mlp::backward_batch`]: `n` rows of `input_dim` floats.
    pub fn batch_d_input<'s>(&self, scratch: &'s MlpScratch, n: usize) -> &'s [f32] {
        &scratch.delta[..n * self.spec.input_dim()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny() -> (Mlp, ParamVec) {
        let spec = MlpSpec::relu(vec![3, 5, 2]);
        let mlp = Mlp::new(spec.clone(), 0);
        let mut params = ParamVec::zeros(spec.param_count());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        mlp.init(&mut params, &mut rng);
        (mlp, params)
    }

    #[test]
    fn param_count_matches_layout() {
        let spec = MlpSpec::relu(vec![3, 5, 2]);
        assert_eq!(spec.param_count(), 3 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn forward_output_has_output_dim() {
        let (mlp, params) = tiny();
        let cache = mlp.forward(&params, &[0.5, -0.2, 1.0]);
        assert_eq!(cache.output().len(), 2);
    }

    #[test]
    fn zero_params_give_zero_output() {
        let spec = MlpSpec::relu(vec![3, 4, 2]);
        let mlp = Mlp::new(spec.clone(), 0);
        let params = ParamVec::zeros(spec.param_count());
        let cache = mlp.forward(&params, &[1.0, 2.0, 3.0]);
        assert!(cache.output().iter().all(|&y| y == 0.0));
    }

    /// Finite-difference check of the analytic gradient.
    #[test]
    fn backward_matches_finite_differences() {
        let (mlp, mut params) = tiny();
        let x = [0.3f32, -0.7, 0.9];
        let target = [0.2f32, -0.4];

        let loss_of = |p: &ParamVec| -> f32 {
            let out = mlp.forward(p, &x);
            out.output()
                .iter()
                .zip(&target)
                .map(|(o, t)| 0.5 * (o - t) * (o - t))
                .sum()
        };

        let cache = mlp.forward(&params, &x);
        let d_out: Vec<f32> =
            cache.output().iter().zip(&target).map(|(o, t)| o - t).collect();
        let mut grad = vec![0.0f32; params.len()];
        mlp.backward(&params, &cache, &d_out, &mut grad);

        let eps = 1e-3f32;
        for i in (0..params.len()).step_by(3) {
            let orig = params.as_slice()[i];
            params.as_mut_slice()[i] = orig + eps;
            let up = loss_of(&params);
            params.as_mut_slice()[i] = orig - eps;
            let down = loss_of(&params);
            params.as_mut_slice()[i] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grad[i]).abs() < 2e-2,
                "param {i}: finite-diff {fd} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let (mlp, params) = tiny();
        let target = [0.2f32, -0.4];
        let mut x = vec![0.3f32, -0.7, 0.9];

        let loss_of = |x: &[f32]| -> f32 {
            let out = mlp.forward(&params, x);
            out.output()
                .iter()
                .zip(&target)
                .map(|(o, t)| 0.5 * (o - t) * (o - t))
                .sum()
        };

        let cache = mlp.forward(&params, &x);
        let d_out: Vec<f32> =
            cache.output().iter().zip(&target).map(|(o, t)| o - t).collect();
        let mut grad = vec![0.0f32; params.len()];
        let d_in = mlp.backward(&params, &cache, &d_out, &mut grad);

        let eps = 1e-3f32;
        for i in 0..x.len() {
            let orig = x[i];
            x[i] = orig + eps;
            let up = loss_of(&x);
            x[i] = orig - eps;
            let down = loss_of(&x);
            x[i] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!((fd - d_in[i]).abs() < 2e-2, "input {i}: {fd} vs {}", d_in[i]);
        }
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn wrong_input_dim_panics() {
        let (mlp, params) = tiny();
        mlp.forward(&params, &[1.0]);
    }

    /// Quick smoke of the batched kernels against the per-sample ones; the
    /// exhaustive bit-identity checks live in `tests/properties.rs`.
    #[test]
    fn batched_kernels_match_per_sample_bits() {
        let (mlp, params) = tiny();
        let inputs = [[0.5f32, -0.2, 1.0], [-0.9, 0.4, 0.1], [2.0, -1.5, 0.7]];
        let weights = [1.0f32, 0.25, 2.5];
        let n = inputs.len();

        let mut scratch = MlpScratch::new();
        let staged = mlp.stage_batch(&mut scratch, n);
        for (row, x) in staged.chunks_exact_mut(3).zip(&inputs) {
            row.copy_from_slice(x);
        }
        mlp.forward_batch(&params, &mut scratch, n);

        let mut d_rows = Vec::new();
        for (b, x) in inputs.iter().enumerate() {
            let cache = mlp.forward(&params, x);
            assert_eq!(
                cache.output(),
                &mlp.batch_outputs(&scratch, n)[b * 2..(b + 1) * 2],
                "forward bits differ at sample {b}"
            );
            let d: Vec<f32> = cache.output().iter().map(|y| y + 0.3).collect();
            d_rows.push((cache, d));
        }

        // Weighted batched backward vs per-sample grads folded in order.
        let d_out = mlp.stage_d_out(&mut scratch, n);
        for (row, (_, d)) in d_out.chunks_exact_mut(2).zip(&d_rows) {
            row.copy_from_slice(d);
        }
        let mut batched = vec![0.0f32; params.len()];
        mlp.backward_batch(&params, &mut scratch, n, &weights, &mut batched);

        let mut folded = vec![0.0f32; params.len()];
        let mut d_ins = Vec::new();
        for ((cache, d), &w) in d_rows.iter().zip(&weights) {
            let mut g = vec![0.0f32; params.len()];
            d_ins.push(mlp.backward(&params, cache, d, &mut g));
            for (acc, gi) in folded.iter_mut().zip(&g) {
                *acc += w * *gi;
            }
        }
        assert_eq!(batched, folded, "weighted gradient bits differ");
        let flat: Vec<f32> = d_ins.concat();
        assert_eq!(mlp.batch_d_input(&scratch, n), &flat[..], "input gradient bits differ");
    }
}
