//! Dense multi-layer perceptrons with manual backpropagation.
//!
//! The weights of an [`Mlp`] live inside a caller-owned [`ParamVec`] segment,
//! so a model composed of several sub-networks (e.g. the branched policy)
//! still exposes a single flat parameter vector to the compression and
//! aggregation code above.

use crate::param::ParamVec;
use rand::Rng;

/// Activation function applied after each hidden layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// No nonlinearity (used for output layers).
    Identity,
}

impl Activation {
    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the activation *output* `y`.
    fn grad_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Identity => 1.0,
        }
    }
}

/// Architecture of an MLP: layer widths and hidden activation.
///
/// `sizes = [in, h1, .., out]` describes `sizes.len() - 1` dense layers; the
/// hidden layers use `hidden_activation`, the final layer is linear.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpSpec {
    /// Layer widths, input first, output last. Must have at least 2 entries.
    pub sizes: Vec<usize>,
    /// Activation applied after every layer except the last.
    pub hidden_activation: Activation,
}

impl MlpSpec {
    /// Creates a spec with ReLU hidden layers.
    pub fn relu(sizes: Vec<usize>) -> Self {
        Self { sizes, hidden_activation: Activation::Relu }
    }

    /// Total number of parameters (weights + biases) the spec requires.
    pub fn param_count(&self) -> usize {
        self.sizes.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        *self.sizes.first().expect("spec must have layers")
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        *self.sizes.last().expect("spec must have layers")
    }
}

/// A dense MLP whose parameters occupy `[offset, offset + param_count)` of a
/// shared flat parameter vector.
///
/// The struct itself stores only the architecture and the offset; weights are
/// read from / written to the `ParamVec` passed to each call. This keeps the
/// single-flat-vector invariant that the decentralized-learning layer relies
/// on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mlp {
    spec: MlpSpec,
    offset: usize,
}

/// Forward-pass activations cached for backpropagation.
#[derive(Debug, Clone)]
pub struct Cache {
    /// `acts[0]` is the input; `acts[l]` the output of layer `l - 1`.
    acts: Vec<Vec<f32>>,
}

impl Cache {
    /// Network output (activation of the final layer).
    pub fn output(&self) -> &[f32] {
        self.acts.last().expect("cache holds at least the input")
    }
}

impl Mlp {
    /// Creates an MLP occupying parameters starting at `offset`.
    ///
    /// # Panics
    /// Panics if the spec has fewer than two layer sizes.
    pub fn new(spec: MlpSpec, offset: usize) -> Self {
        assert!(spec.sizes.len() >= 2, "an MLP needs input and output sizes");
        Self { spec, offset }
    }

    /// Architecture of this network.
    pub fn spec(&self) -> &MlpSpec {
        &self.spec
    }

    /// Offset of this network's parameters inside the shared vector.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Number of parameters this network owns.
    pub fn param_count(&self) -> usize {
        self.spec.param_count()
    }

    /// Xavier-initializes this network's segment of `params`.
    pub fn init<R: Rng + ?Sized>(&self, params: &mut ParamVec, rng: &mut R) {
        let mut off = self.offset;
        for w in self.spec.sizes.windows(2) {
            params.xavier_dense(off, w[0], w[1], rng);
            off += w[0] * w[1] + w[1];
        }
    }

    /// Runs the forward pass, returning the cache needed for [`Mlp::backward`].
    ///
    /// # Panics
    /// Panics if `input` length differs from the spec's input size.
    pub fn forward(&self, params: &ParamVec, input: &[f32]) -> Cache {
        assert_eq!(input.len(), self.spec.input_dim(), "input dimension mismatch");
        let p = params.as_slice();
        let n_layers = self.spec.sizes.len() - 1;
        let mut acts = Vec::with_capacity(n_layers + 1);
        acts.push(input.to_vec());
        let mut off = self.offset;
        for (l, w) in self.spec.sizes.windows(2).enumerate() {
            let (fan_in, fan_out) = (w[0], w[1]);
            let weights = &p[off..off + fan_in * fan_out];
            let biases = &p[off + fan_in * fan_out..off + fan_in * fan_out + fan_out];
            let x = acts.last().expect("at least input present");
            let act = if l + 1 == n_layers {
                Activation::Identity
            } else {
                self.spec.hidden_activation
            };
            let mut y = vec![0.0f32; fan_out];
            for (j, yj) in y.iter_mut().enumerate() {
                // weights stored row-major: weight[j * fan_in + i] connects
                // input i to output j.
                let row = &weights[j * fan_in..(j + 1) * fan_in];
                let mut acc = biases[j];
                for (xi, wji) in x.iter().zip(row) {
                    acc += xi * wji;
                }
                *yj = act.apply(acc);
            }
            acts.push(y);
            off += fan_in * fan_out + fan_out;
        }
        Cache { acts }
    }

    /// Backpropagates `d_out` (gradient of the loss w.r.t. the network
    /// output) through the cached forward pass, accumulating parameter
    /// gradients into `grad` (same layout as the parameter vector) and
    /// returning the gradient w.r.t. the input.
    ///
    /// # Panics
    /// Panics if `d_out` length differs from the output size or `grad` is
    /// shorter than the parameter vector.
    pub fn backward(
        &self,
        params: &ParamVec,
        cache: &Cache,
        d_out: &[f32],
        grad: &mut [f32],
    ) -> Vec<f32> {
        assert_eq!(d_out.len(), self.spec.output_dim(), "output gradient dimension mismatch");
        assert!(grad.len() >= self.offset + self.param_count(), "gradient buffer too short");
        let p = params.as_slice();
        let n_layers = self.spec.sizes.len() - 1;

        // Precompute the parameter offset of each layer.
        let mut offsets = Vec::with_capacity(n_layers);
        let mut off = self.offset;
        for w in self.spec.sizes.windows(2) {
            offsets.push(off);
            off += w[0] * w[1] + w[1];
        }

        let mut delta = d_out.to_vec();
        for l in (0..n_layers).rev() {
            let fan_in = self.spec.sizes[l];
            let fan_out = self.spec.sizes[l + 1];
            let act = if l + 1 == n_layers {
                Activation::Identity
            } else {
                self.spec.hidden_activation
            };
            let y = &cache.acts[l + 1];
            let x = &cache.acts[l];
            // delta through the activation
            for (d, yj) in delta.iter_mut().zip(y) {
                *d *= act.grad_from_output(*yj);
            }
            let w_off = offsets[l];
            let b_off = w_off + fan_in * fan_out;
            // parameter gradients
            for j in 0..fan_out {
                let dj = delta[j];
                let row = &mut grad[w_off + j * fan_in..w_off + (j + 1) * fan_in];
                for (g, xi) in row.iter_mut().zip(x) {
                    *g += dj * xi;
                }
                grad[b_off + j] += dj;
            }
            // gradient w.r.t. the layer input
            if l > 0 {
                let weights = &p[w_off..b_off];
                let mut d_in = vec![0.0f32; fan_in];
                for (j, dj) in delta.iter().enumerate() {
                    let row = &weights[j * fan_in..(j + 1) * fan_in];
                    for (di, wji) in d_in.iter_mut().zip(row) {
                        *di += dj * wji;
                    }
                }
                delta = d_in;
            } else {
                let weights = &p[w_off..b_off];
                let mut d_in = vec![0.0f32; fan_in];
                for (j, dj) in delta.iter().enumerate() {
                    let row = &weights[j * fan_in..(j + 1) * fan_in];
                    for (di, wji) in d_in.iter_mut().zip(row) {
                        *di += dj * wji;
                    }
                }
                return d_in;
            }
        }
        unreachable!("loop returns at l == 0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny() -> (Mlp, ParamVec) {
        let spec = MlpSpec::relu(vec![3, 5, 2]);
        let mlp = Mlp::new(spec.clone(), 0);
        let mut params = ParamVec::zeros(spec.param_count());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        mlp.init(&mut params, &mut rng);
        (mlp, params)
    }

    #[test]
    fn param_count_matches_layout() {
        let spec = MlpSpec::relu(vec![3, 5, 2]);
        assert_eq!(spec.param_count(), 3 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn forward_output_has_output_dim() {
        let (mlp, params) = tiny();
        let cache = mlp.forward(&params, &[0.5, -0.2, 1.0]);
        assert_eq!(cache.output().len(), 2);
    }

    #[test]
    fn zero_params_give_zero_output() {
        let spec = MlpSpec::relu(vec![3, 4, 2]);
        let mlp = Mlp::new(spec.clone(), 0);
        let params = ParamVec::zeros(spec.param_count());
        let cache = mlp.forward(&params, &[1.0, 2.0, 3.0]);
        assert!(cache.output().iter().all(|&y| y == 0.0));
    }

    /// Finite-difference check of the analytic gradient.
    #[test]
    fn backward_matches_finite_differences() {
        let (mlp, mut params) = tiny();
        let x = [0.3f32, -0.7, 0.9];
        let target = [0.2f32, -0.4];

        let loss_of = |p: &ParamVec| -> f32 {
            let out = mlp.forward(p, &x);
            out.output()
                .iter()
                .zip(&target)
                .map(|(o, t)| 0.5 * (o - t) * (o - t))
                .sum()
        };

        let cache = mlp.forward(&params, &x);
        let d_out: Vec<f32> =
            cache.output().iter().zip(&target).map(|(o, t)| o - t).collect();
        let mut grad = vec![0.0f32; params.len()];
        mlp.backward(&params, &cache, &d_out, &mut grad);

        let eps = 1e-3f32;
        for i in (0..params.len()).step_by(3) {
            let orig = params.as_slice()[i];
            params.as_mut_slice()[i] = orig + eps;
            let up = loss_of(&params);
            params.as_mut_slice()[i] = orig - eps;
            let down = loss_of(&params);
            params.as_mut_slice()[i] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grad[i]).abs() < 2e-2,
                "param {i}: finite-diff {fd} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let (mlp, params) = tiny();
        let target = [0.2f32, -0.4];
        let mut x = vec![0.3f32, -0.7, 0.9];

        let loss_of = |x: &[f32]| -> f32 {
            let out = mlp.forward(&params, x);
            out.output()
                .iter()
                .zip(&target)
                .map(|(o, t)| 0.5 * (o - t) * (o - t))
                .sum()
        };

        let cache = mlp.forward(&params, &x);
        let d_out: Vec<f32> =
            cache.output().iter().zip(&target).map(|(o, t)| o - t).collect();
        let mut grad = vec![0.0f32; params.len()];
        let d_in = mlp.backward(&params, &cache, &d_out, &mut grad);

        let eps = 1e-3f32;
        for i in 0..x.len() {
            let orig = x[i];
            x[i] = orig + eps;
            let up = loss_of(&x);
            x[i] = orig - eps;
            let down = loss_of(&x);
            x[i] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!((fd - d_in[i]).abs() < 2e-2, "input {i}: {fd} vs {}", d_in[i]);
        }
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn wrong_input_dim_panics() {
        let (mlp, params) = tiny();
        mlp.forward(&params, &[1.0]);
    }
}
