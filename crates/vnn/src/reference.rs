//! Retained-verbatim per-sample kernels — the bit-identity oracle for the
//! batched training path.
//!
//! Same pattern as `lbchat::coreset::reference` and
//! `simworld::bev::reference`: this module freezes the straightforward
//! per-sample implementations so the optimized kernels ([`Mlp::forward_batch`],
//! [`Mlp::backward_batch`], [`BranchedPolicy::train_shard`]) can be asserted
//! **bit-for-bit** equal against code that will never be touched by further
//! optimization work. The bodies below are byte-for-byte the per-sample
//! kernels as of the batched-kernel rewrite, with private field accesses
//! routed through crate-internal accessors; every floating-point operation
//! and its order is unchanged.
//!
//! Two composition helpers define what "bit-identical" means for whole
//! batches:
//!
//! * [`batch_loss_and_grad`] — per-sample verbatim gradients folded with the
//!   same fixed [`SHARD`]-sized reduction the optimized path uses. The
//!   optimized minibatch gradient must equal this exactly.
//! * [`policy_train_step`] — the pre-batching sequential training step
//!   (allocating, sample-at-a-time), kept as the performance baseline for
//!   the `--reference` bench arm.
//!
//! This module trades speed for auditability on purpose; nothing outside
//! tests and the benchmark harness should call it.

use crate::loss::mean_loss_and_grad;
use crate::mlp::{Cache, Mlp};
use crate::param::ParamVec;
use crate::policy::{BatchSource, BranchedPolicy, PolicySample};
use crate::scratch::SHARD;
use crate::sgd::Sgd;

/// Verbatim per-sample forward pass of [`Mlp::forward`].
///
/// # Panics
/// Panics if `input` length differs from the spec's input size.
pub fn forward(mlp: &Mlp, params: &ParamVec, input: &[f32]) -> Cache {
    let spec = mlp.spec();
    assert_eq!(input.len(), spec.input_dim(), "input dimension mismatch");
    let p = params.as_slice();
    let n_layers = spec.sizes.len() - 1;
    let mut acts = Vec::with_capacity(n_layers + 1);
    acts.push(input.to_vec());
    let mut off = mlp.offset();
    for (l, w) in spec.sizes.windows(2).enumerate() {
        let (fan_in, fan_out) = (w[0], w[1]);
        let weights = &p[off..off + fan_in * fan_out];
        let biases = &p[off + fan_in * fan_out..off + fan_in * fan_out + fan_out];
        let x = acts.last().expect("at least input present");
        let act = if l + 1 == n_layers {
            crate::Activation::Identity
        } else {
            spec.hidden_activation
        };
        let mut y = vec![0.0f32; fan_out];
        for (j, yj) in y.iter_mut().enumerate() {
            // weights stored row-major: weight[j * fan_in + i] connects
            // input i to output j.
            let row = &weights[j * fan_in..(j + 1) * fan_in];
            let mut acc = biases[j];
            for (xi, wji) in x.iter().zip(row) {
                acc += xi * wji;
            }
            *yj = act.apply(acc);
        }
        acts.push(y);
        off += fan_in * fan_out + fan_out;
    }
    Cache { acts }
}

/// Verbatim per-sample backward pass of [`Mlp::backward`].
///
/// # Panics
/// Panics if `d_out` length differs from the output size or `grad` is
/// shorter than the parameter vector.
pub fn backward(
    mlp: &Mlp,
    params: &ParamVec,
    cache: &Cache,
    d_out: &[f32],
    grad: &mut [f32],
) -> Vec<f32> {
    let spec = mlp.spec();
    assert_eq!(d_out.len(), spec.output_dim(), "output gradient dimension mismatch");
    assert!(grad.len() >= mlp.offset() + mlp.param_count(), "gradient buffer too short");
    let p = params.as_slice();
    let n_layers = spec.sizes.len() - 1;

    // Precompute the parameter offset of each layer.
    let mut offsets = Vec::with_capacity(n_layers);
    let mut off = mlp.offset();
    for w in spec.sizes.windows(2) {
        offsets.push(off);
        off += w[0] * w[1] + w[1];
    }

    let mut delta = d_out.to_vec();
    for l in (0..n_layers).rev() {
        let fan_in = spec.sizes[l];
        let fan_out = spec.sizes[l + 1];
        let act = if l + 1 == n_layers {
            crate::Activation::Identity
        } else {
            spec.hidden_activation
        };
        let y = &cache.acts[l + 1];
        let x = &cache.acts[l];
        // delta through the activation
        for (d, yj) in delta.iter_mut().zip(y) {
            *d *= act.grad_from_output(*yj);
        }
        let w_off = offsets[l];
        let b_off = w_off + fan_in * fan_out;
        // parameter gradients
        for j in 0..fan_out {
            let dj = delta[j];
            let row = &mut grad[w_off + j * fan_in..w_off + (j + 1) * fan_in];
            for (g, xi) in row.iter_mut().zip(x) {
                *g += dj * xi;
            }
            grad[b_off + j] += dj;
        }
        // gradient w.r.t. the layer input
        if l > 0 {
            let weights = &p[w_off..b_off];
            let mut d_in = vec![0.0f32; fan_in];
            for (j, dj) in delta.iter().enumerate() {
                let row = &weights[j * fan_in..(j + 1) * fan_in];
                for (di, wji) in d_in.iter_mut().zip(row) {
                    *di += dj * wji;
                }
            }
            delta = d_in;
        } else {
            let weights = &p[w_off..b_off];
            let mut d_in = vec![0.0f32; fan_in];
            for (j, dj) in delta.iter().enumerate() {
                let row = &weights[j * fan_in..(j + 1) * fan_in];
                for (di, wji) in d_in.iter_mut().zip(row) {
                    *di += dj * wji;
                }
            }
            return d_in;
        }
    }
    unreachable!("loop returns at l == 0");
}

/// Verbatim per-sample policy forward
/// ([`BranchedPolicy::forward_with`] against the policy's own parameters).
///
/// # Panics
/// Panics if `branch` is out of range or the input dimension is wrong.
pub fn policy_forward(policy: &BranchedPolicy, input: &[f32], branch: usize) -> Vec<f32> {
    assert!(branch < policy.spec().n_branches, "branch out of range");
    let params = policy.params();
    let trunk_out = forward(policy.trunk(), params, input);
    // Re-apply the hidden nonlinearity to the trunk output so head inputs
    // are nonlinear features (the trunk's last layer is linear by MLP
    // convention), then append the skip inputs verbatim.
    let mut feats: Vec<f32> = trunk_out.output().iter().map(|&v| v.max(0.0)).collect();
    feats.extend_from_slice(&input[input.len() - policy.spec().skip_inputs..]);
    let head = &policy.heads()[branch];
    forward(head, params, &feats).output().to_vec()
}

/// Verbatim per-sample loss and full parameter gradient
/// ([`BranchedPolicy::loss_and_grad`]).
///
/// # Panics
/// Panics if `branch` is out of range or a dimension is wrong.
pub fn policy_loss_and_grad(
    policy: &BranchedPolicy,
    input: &[f32],
    branch: usize,
    target: &[f32],
) -> (f32, Vec<f32>) {
    assert!(branch < policy.spec().n_branches, "branch out of range");
    let params = policy.params();
    let mut grad = vec![0.0f32; params.len()];
    let trunk_cache = forward(policy.trunk(), params, input);
    let mut feats: Vec<f32> = trunk_cache.output().iter().map(|&v| v.max(0.0)).collect();
    let n_trunk = feats.len();
    feats.extend_from_slice(&input[input.len() - policy.spec().skip_inputs..]);
    let head = &policy.heads()[branch];
    let head_cache = forward(head, params, &feats);
    let pred = head_cache.output();
    let (loss, d_pred) = mean_loss_and_grad(policy.loss_kind(), pred, target);
    let d_feats = backward(head, params, &head_cache, &d_pred, &mut grad);
    // Backprop through the manual ReLU between trunk and head; the skip
    // tail flows to the (constant) input and is dropped.
    let d_trunk_out: Vec<f32> = d_feats[..n_trunk]
        .iter()
        .zip(trunk_cache.output())
        .map(|(d, &y)| if y > 0.0 { *d } else { 0.0 })
        .collect();
    backward(policy.trunk(), params, &trunk_cache, &d_trunk_out, &mut grad);
    (loss, grad)
}

/// Per-sample verbatim gradients composed with the fixed [`SHARD`]-sized
/// reduction of the batched path: each shard of consecutive samples folds
/// its weighted per-sample gradients in sample order into a zeroed partial,
/// and partials are added into `grad` in shard order. Returns
/// `(Σ w·loss, Σ w)`, both accumulated in global sample order.
///
/// This composition *defines* the bits the optimized
/// [`BranchedPolicy::train_shard`] / [`BranchedPolicy::reduce_shards`] pair
/// must reproduce exactly, for any worker count.
///
/// # Panics
/// Panics if `grad` is shorter than the parameter vector or any sample is
/// malformed.
pub fn batch_loss_and_grad<S: BatchSource + ?Sized>(
    policy: &BranchedPolicy,
    src: &S,
    grad: &mut [f32],
) -> (f32, f32) {
    let n = src.len();
    let plen = policy.param_count();
    assert!(grad.len() >= plen, "gradient buffer too short");
    grad[..plen].fill(0.0);
    let mut loss_sum = 0.0f32;
    let mut weight_sum = 0.0f32;
    let mut partial = vec![0.0f32; plen];
    let mut shard_start = 0usize;
    while shard_start < n {
        let shard_end = (shard_start + SHARD).min(n);
        partial.fill(0.0);
        for i in shard_start..shard_end {
            let s = src.at(i);
            let (l, g) = policy_loss_and_grad(policy, s.input, s.branch, s.target);
            for (acc, gi) in partial.iter_mut().zip(&g) {
                *acc += s.weight * *gi;
            }
            loss_sum += s.weight * l;
            weight_sum += s.weight;
        }
        for (g, p) in grad[..plen].iter_mut().zip(&partial) {
            *g += *p;
        }
        shard_start = shard_end;
    }
    (loss_sum, weight_sum)
}

/// The pre-batching sequential training step, retained verbatim from the
/// driving learner: per-sample gradients accumulated weighted into one
/// freshly allocated full-length buffer, normalized by the total weight,
/// then one plain [`Sgd::step`]. Returns the weighted mean loss.
///
/// This is the *performance* baseline for the `--reference` bench arm; for
/// batches larger than [`SHARD`] its accumulation order differs from the
/// sharded reduction, so it is **not** the bit-identity oracle — that is
/// [`batch_loss_and_grad`].
pub fn policy_train_step(
    policy: &mut BranchedPolicy,
    opt: &mut Sgd,
    batch: &[PolicySample<'_>],
) -> f32 {
    if batch.is_empty() {
        return 0.0;
    }
    let mut grad = vec![0.0f32; policy.param_count()];
    let mut loss_acc = 0.0f32;
    let mut w_acc = 0.0f32;
    for s in batch {
        let (l, g) = policy_loss_and_grad(policy, s.input, s.branch, s.target);
        loss_acc += s.weight * l;
        w_acc += s.weight;
        for (acc, gi) in grad.iter_mut().zip(&g) {
            *acc += s.weight * *gi;
        }
    }
    let inv = 1.0 / w_acc;
    for g in &mut grad {
        *g *= inv;
    }
    opt.step(policy.params_mut().as_mut_slice(), &grad);
    loss_acc * inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySpec;
    use rand::SeedableRng;

    fn policy() -> BranchedPolicy {
        let spec = PolicySpec {
            input_dim: 6,
            trunk: vec![12, 8],
            n_branches: 4,
            waypoints: 3,
            skip_inputs: 1,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        BranchedPolicy::new(&spec, &mut rng)
    }

    /// The retained copies must still agree with the live per-sample
    /// kernels (which themselves are unchanged by the batching work).
    #[test]
    fn reference_matches_live_per_sample_kernels() {
        let p = policy();
        let x = [0.4f32, -0.1, 0.8, 0.2, -0.6, 0.3];
        let t = vec![0.25f32; 6];
        assert_eq!(policy_forward(&p, &x, 2), p.forward(&x, 2));
        let (l_ref, g_ref) = policy_loss_and_grad(&p, &x, 1, &t);
        let (l_live, g_live) = p.loss_and_grad(&x, 1, &t);
        assert_eq!(l_ref.to_bits(), l_live.to_bits());
        assert_eq!(g_ref, g_live);
    }
}
