//! Property-based integration tests over the protocol-level invariants:
//! coreset weight preservation, top-k compression, Akima interpolation,
//! the Eq. (7) solver's feasibility, and aggregation convexity — all with
//! proptest-generated inputs.

use lbchat::aggregate::{aggregate, AggregationRule};
use lbchat::compress::{compress_dense, top_k, wire_bytes};
use lbchat::coreset::{reduce, Coreset};
use lbchat::optimize::{equal_compression_choice, CompressionProblem};
use lbchat::phi::{Akima, PhiCurve};
use proptest::prelude::*;
use rand::SeedableRng;
use vnn::ParamVec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn top_k_keeps_norm_bounded(values in prop::collection::vec(-10.0f32..10.0, 4..256), psi in 0.0f32..1.0) {
        let p = ParamVec::from_vec(values);
        let hat = compress_dense(&p, psi);
        // Compression never increases the norm and never flips signs.
        prop_assert!(hat.l2_norm() <= p.l2_norm() + 1e-4);
        for (a, b) in p.as_slice().iter().zip(hat.as_slice()) {
            prop_assert!(*b == 0.0 || (a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn top_k_nnz_matches_psi(values in prop::collection::vec(-10.0f32..10.0, 4..256), psi in 0.01f32..1.0) {
        let p = ParamVec::from_vec(values);
        let s = top_k(&p, psi);
        let expected = ((psi as f64) * p.len() as f64).ceil() as usize;
        prop_assert_eq!(s.nnz(), expected.min(p.len()));
        prop_assert!(s.wire_bytes() >= s.nnz() * 8);
    }

    #[test]
    fn wire_bytes_monotone_in_psi(bytes in 1usize..100_000_000, a in 0.0f32..1.0, b in 0.0f32..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(wire_bytes(bytes, lo) <= wire_bytes(bytes, hi));
    }

    #[test]
    fn reduce_preserves_total_weight(
        weights in prop::collection::vec(0.1f32..50.0, 10..200),
        target in 5usize..50,
    ) {
        let n = weights.len();
        let c = Coreset::new((0..n).collect::<Vec<usize>>(), weights);
        let total = c.total_weight();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let r = reduce(c, target, &mut rng);
        prop_assert!(r.len() <= n.min(target.max(n.min(target))));
        let rel = (r.total_weight() - total).abs() / total;
        prop_assert!(rel < 1e-3, "total weight drifted by {}", rel);
    }

    #[test]
    fn akima_stays_within_data_range_on_monotone_input(
        mut ys in prop::collection::vec(0.0f64..10.0, 4..12),
    ) {
        ys.sort_by(|a, b| b.partial_cmp(a).unwrap()); // decreasing, like phi
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let a = Akima::fit(&xs, &ys);
        let (lo, hi) = (*ys.last().unwrap(), ys[0]);
        for k in 0..100 {
            let x = k as f64 * (xs.len() - 1) as f64 / 99.0;
            let v = a.eval(x);
            // Akima is local: small overshoot allowed, but bounded.
            prop_assert!(v >= lo - (hi - lo) * 0.2 - 1e-9);
            prop_assert!(v <= hi + (hi - lo) * 0.2 + 1e-9);
        }
    }

    #[test]
    fn solver_choice_is_always_feasible(
        lj in 0.0f32..5.0,
        li in 0.0f32..5.0,
        base_i in 0.05f32..2.0,
        base_j in 0.05f32..2.0,
        contact in 0.0f64..120.0,
    ) {
        let mk = |base: f32| {
            let psi = vec![0.02f32, 0.1, 0.3, 0.6, 1.0];
            let loss = psi.iter().map(|p| base + (1.0 - p) * 1.5).collect();
            PhiCurve::from_points(psi, loss)
        };
        let phi_i = mk(base_i);
        let phi_j = mk(base_j);
        let p = CompressionProblem {
            phi_i: &phi_i,
            phi_j: &phi_j,
            loss_j_on_ci: lj,
            loss_i_on_cj: li,
            model_bytes: 52 * 1024 * 1024,
            bandwidth_bps: 31e6,
            time_budget: 15.0,
            contact,
            lambda_c: 0.01,
        };
        let c = p.solve();
        prop_assert!(p.feasible(c.psi_i, c.psi_j));
        prop_assert!((0.0..=1.0).contains(&c.psi_i));
        prop_assert!((0.0..=1.0).contains(&c.psi_j));
        prop_assert!(c.transfer_time <= p.time_limit() + 1e-6);
    }

    #[test]
    fn equal_compression_always_fits(
        bytes in 1usize..200_000_000,
        budget in 0.1f64..30.0,
        contact in 0.0f64..120.0,
    ) {
        let c = equal_compression_choice(bytes, 31e6, budget, contact);
        prop_assert!(c.transfer_time <= budget.min(contact) + 1e-6);
        prop_assert!((0.0..=1.0).contains(&c.psi_i));
        prop_assert_eq!(c.psi_i, c.psi_j);
    }

    #[test]
    fn aggregation_is_a_convex_combination(
        a in prop::collection::vec(-5.0f32..5.0, 8),
        b in prop::collection::vec(-5.0f32..5.0, 8),
        la in 0.0f32..10.0,
        lb in 0.0f32..10.0,
    ) {
        let pa = ParamVec::from_vec(a.clone());
        let pb = ParamVec::from_vec(b.clone());
        for rule in [AggregationRule::InverseLoss, AggregationRule::AsPrinted, AggregationRule::Average] {
            let m = aggregate(&pa, la, &pb, lb, rule);
            for ((x, y), z) in a.iter().zip(&b).zip(m.as_slice()) {
                let (lo, hi) = if x <= y { (*x, *y) } else { (*y, *x) };
                prop_assert!(*z >= lo - 1e-4 && *z <= hi + 1e-4,
                    "{:?}: component {} outside [{}, {}]", rule, z, lo, hi);
            }
        }
    }
}

/// Pinned from a proptest-discovered failure of `equal_compression_always_fits`
/// (seed file since retired): a ~154 MB model against a 24.27 s budget put the
/// chosen ψ's transfer time a few f64 ULPs past the deadline, because the
/// f64→f32 rounding of the computed ratio could round *up*.
/// `equal_compression_choice` now nudges the ratio down to the next f32 before
/// clamping; this case must stay within budget forever.
#[test]
fn equal_compression_regression_154mb_tight_budget() {
    let (bytes, budget, contact) = (154_254_037usize, 24.273599310384462f64, 85.40229807312959f64);
    let c = equal_compression_choice(bytes, 31e6, budget, contact);
    assert!(
        c.transfer_time <= budget.min(contact) + 1e-6,
        "transfer {} exceeds deadline {}",
        c.transfer_time,
        budget.min(contact)
    );
    assert!((0.0..=1.0).contains(&c.psi_i));
    assert_eq!(c.psi_i, c.psi_j);
}
