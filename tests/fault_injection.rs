//! Failure-injection integration tests: the stack must behave sanely under
//! degenerate traces, hostile channels, and pathological datasets.

use lbchat::node::LbChatAlgorithm;
use lbchat::runtime::{Runtime, RuntimeConfig};
use lbchat::{LbChatConfig, Learner, WeightedDataset};
use rand::SeedableRng;
use simnet::geom::Vec2;
use simnet::loss::LossModel;
use simnet::trace::MobilityTrace;
use vnn::ParamVec;

/// The same analytic learner the unit tests use, kept local to this suite.
#[derive(Debug, Clone)]
struct Line {
    params: ParamVec,
    lr: f32,
}

#[derive(Debug, Clone, Copy)]
struct Pt {
    x: f32,
    y: f32,
}

impl Line {
    fn new() -> Self {
        Self { params: ParamVec::from_vec(vec![0.0, 0.0]), lr: 0.05 }
    }
}

impl Learner for Line {
    type Sample = Pt;
    fn params(&self) -> &ParamVec {
        &self.params
    }
    fn set_params(&mut self, p: ParamVec) {
        self.params = p;
    }
    fn loss(&self, s: &Pt) -> f32 {
        self.loss_with(&self.params, s)
    }
    fn loss_with(&self, p: &ParamVec, s: &Pt) -> f32 {
        let w = p.as_slice();
        let r = w[0] * s.x + w[1] - s.y;
        r * r
    }
    fn train_step(&mut self, batch: &[(&Pt, f32)]) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        let w = self.params.as_slice();
        let (mut ga, mut gb, mut acc, mut ws) = (0.0f32, 0.0, 0.0, 0.0);
        for (s, wt) in batch {
            let r = w[0] * s.x + w[1] - s.y;
            ga += wt * 2.0 * r * s.x;
            gb += wt * 2.0 * r;
            acc += wt * r * r;
            ws += wt;
        }
        let p = self.params.as_mut_slice();
        p[0] -= self.lr * ga / ws;
        p[1] -= self.lr * gb / ws;
        acc / ws
    }
    fn group_of(&self, _s: &Pt) -> usize {
        0
    }
    fn n_groups(&self) -> usize {
        1
    }
}

fn run_ok(
    rt: &Runtime,
    a: &mut LbChatAlgorithm<Line>,
    trace: &MobilityTrace,
    eval: &[Pt],
) -> lbchat::prelude::Metrics {
    rt.run(a, trace, eval).expect("trace fits fleet")
}

fn data(a: f32, n: usize) -> Vec<Pt> {
    (0..n).map(|i| {
        let x = i as f32 / n as f32 * 4.0 - 2.0;
        Pt { x, y: a * x }
    }).collect()
}

fn algo(n: usize) -> LbChatAlgorithm<Line> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let learners = vec![Line::new(); n];
    let datasets: Vec<_> =
        (0..n).map(|i| WeightedDataset::uniform(data(i as f32, 120))).collect();
    let cfg = LbChatConfig {
        coreset_size: 20,
        coreset_bytes_per_sample: 256,
        model_wire_bytes: 2 * 1024 * 1024,
        batch_size: 16,
        ..LbChatConfig::default()
    };
    LbChatAlgorithm::new(learners, datasets, cfg, &mut rng)
}

#[test]
fn teleporting_vehicles_do_not_break_the_runtime() {
    // A trace whose agent jumps across the map every frame: contacts are
    // one frame long and estimates are garbage. Nothing should panic and
    // training must proceed.
    let frames = 401;
    let jumper: Vec<Vec2> = (0..frames)
        .map(|k| if k % 2 == 0 { Vec2::ZERO } else { Vec2::new(3000.0, 0.0) })
        .collect();
    let parked = vec![Vec2::new(60.0, 0.0); frames];
    let trace = MobilityTrace::new(2.0, vec![jumper, parked]);
    let mut a = algo(2);
    let rt = Runtime::new(RuntimeConfig { duration: 200.0, ..RuntimeConfig::default() });
    let m = run_ok(&rt, &mut a, &trace, &data(0.5, 20));
    assert!(m.train_iterations > 0);
}

#[test]
fn always_out_of_range_means_pure_local_training() {
    let frames = 401;
    let trace = MobilityTrace::new(
        2.0,
        vec![vec![Vec2::ZERO; frames], vec![Vec2::new(9000.0, 0.0); frames]],
    );
    let mut a = algo(2);
    let rt = Runtime::new(RuntimeConfig { duration: 200.0, ..RuntimeConfig::default() });
    // Evaluate on node 1's distribution (slope 1): its local SGD improves
    // the fleet mean even with zero communication.
    let m = run_ok(&rt, &mut a, &trace, &data(1.0, 20));
    assert_eq!(m.sessions, 0);
    assert_eq!(m.coreset_sends, 0);
    let c = &m.loss_curve;
    assert!(c.last().unwrap().1 < c.first().unwrap().1, "local SGD still works");
}

#[test]
fn total_packet_loss_channel_stops_all_payloads() {
    // PER = 1 everywhere: every session dies in the assist phase; no
    // coresets or models are ever delivered, but the runtime completes.
    let frames = 401;
    let trace = MobilityTrace::new(
        2.0,
        vec![vec![Vec2::ZERO; frames], vec![Vec2::new(50.0, 0.0); frames]],
    );
    let mut a = algo(2);
    let rt = Runtime::new(RuntimeConfig {
        duration: 200.0,
        loss_model: LossModel::Distance(vec![(0.0, 1.0), (500.0, 1.0)]),
        ..RuntimeConfig::default()
    });
    let m = run_ok(&rt, &mut a, &trace, &data(0.5, 20));
    assert_eq!(m.coreset_receives, 0, "nothing can get through a PER=1 channel");
    assert_eq!(m.model_receives, 0);
}

#[test]
fn single_vehicle_fleet_is_fine() {
    let frames = 201;
    let trace = MobilityTrace::new(2.0, vec![vec![Vec2::ZERO; frames]]);
    let mut a = algo(1);
    let rt = Runtime::new(RuntimeConfig { duration: 100.0, ..RuntimeConfig::default() });
    let m = run_ok(&rt, &mut a, &trace, &data(0.0, 20));
    assert_eq!(m.sessions, 0);
    assert!(m.train_iterations > 0);
}

#[test]
fn tiny_datasets_still_chat() {
    // Datasets smaller than the coreset size: coresets are the whole
    // dataset; the protocol still works.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let learners = vec![Line::new(), Line::new()];
    let datasets = vec![
        WeightedDataset::uniform(data(1.0, 5)),
        WeightedDataset::uniform(data(-1.0, 5)),
    ];
    let cfg = LbChatConfig {
        coreset_size: 50,
        coreset_bytes_per_sample: 256,
        model_wire_bytes: 1024 * 1024,
        batch_size: 4,
        ..LbChatConfig::default()
    };
    let mut a = LbChatAlgorithm::new(learners, datasets, cfg, &mut rng);
    let frames = 401;
    let trace = MobilityTrace::new(
        2.0,
        vec![vec![Vec2::ZERO; frames], vec![Vec2::new(40.0, 0.0); frames]],
    );
    let rt = Runtime::new(RuntimeConfig { duration: 200.0, ..RuntimeConfig::default() });
    let m = run_ok(&rt, &mut a, &trace, &data(0.0, 10));
    assert!(m.sessions > 0);
    assert!(m.coreset_receives > 0);
    assert!(a.node(0).dataset().len() > 5, "absorption still expands tiny datasets");
}

#[test]
fn zero_duration_run_is_a_noop() {
    let frames = 11;
    let trace = MobilityTrace::new(2.0, vec![vec![Vec2::ZERO; frames]; 2]);
    let mut a = algo(2);
    let rt = Runtime::new(RuntimeConfig { duration: 0.0, ..RuntimeConfig::default() });
    let m = run_ok(&rt, &mut a, &trace, &data(0.5, 10));
    assert_eq!(m.train_iterations, 0);
    assert_eq!(m.sessions, 0);
    assert_eq!(m.loss_curve.len(), 1, "only the final evaluation");
}
