//! Cross-crate coreset integration: Algorithm 1 on real driving frames.

use driving::{collect_datasets, CollectConfig, DrivingLearner};
use lbchat::coreset::{construct, empirical_epsilon, reduce, CoresetConfig};
use lbchat::Learner;
use rand::SeedableRng;
use simworld::world::{World, WorldConfig};

fn trained_learner_and_data() -> (DrivingLearner, Vec<lbchat::WeightedDataset<driving::Frame>>) {
    let mut world = World::new(WorldConfig::small(31));
    let datasets = collect_datasets(&mut world, &CollectConfig { seconds: 180.0, stride: 1, balance_commands: true });
    let spec = DrivingLearner::spec_for(
        world.config().bev.feature_len(),
        world.config().n_waypoints,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut learner = DrivingLearner::new(&spec, 3e-3, &mut rng);
    // Rotate through the whole dataset so every frame (including the
    // heavily weighted turn frames) is actually fitted.
    let pairs = datasets[0].pairs();
    for step in 0..600 {
        let start = (step * 64) % pairs.len();
        let batch: Vec<_> = pairs
            .iter()
            .cycle()
            .skip(start)
            .take(64)
            .map(|(s, w)| (*s, *w))
            .collect();
        learner.train_step(&batch);
    }
    (learner, datasets)
}

#[test]
fn driving_coreset_approximates_the_dataset() {
    let (learner, datasets) = trained_learner_and_data();
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let c = construct(&learner, &datasets[0], &CoresetConfig { size: 100 }, &mut rng);
    assert!(c.len() <= 150, "size near target: {}", c.len());
    let eps = empirical_epsilon(&learner, &c, &datasets[0]);
    assert!(eps < 0.45, "epsilon on driving data: {eps}");
    // Total weight must be preserved (the unbiased-estimator property).
    let rel =
        (c.total_weight() - datasets[0].total_weight()).abs() / datasets[0].total_weight();
    assert!(rel < 0.05, "weight preservation: {rel}");
}

#[test]
fn merge_reduce_keeps_approximating_the_union() {
    let (learner, datasets) = trained_learner_and_data();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let c0 = construct(&learner, &datasets[0], &CoresetConfig { size: 80 }, &mut rng);
    let c1 = construct(&learner, &datasets[1], &CoresetConfig { size: 80 }, &mut rng);
    let reduced = reduce(c0.merge(c1), 80, &mut rng);
    assert_eq!(reduced.len(), 80);

    let mut union = datasets[0].clone();
    for (s, w) in datasets[1].pairs() {
        union.push(s.clone(), w);
    }
    let eps = empirical_epsilon(&learner, &reduced, &union);
    assert!(eps < 0.4, "merge-reduce epsilon on the union: {eps}");
}

#[test]
fn coreset_losses_separate_own_from_foreign_data() {
    // The valuation signal: a model's loss on foreign coresets should
    // (on average) exceed its loss on its own coreset.
    let (learner, datasets) = trained_learner_and_data();
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let pen = lbchat::penalty::PenaltyConfig::none();
    let own_coreset = construct(&learner, &datasets[0], &CoresetConfig { size: 60 }, &mut rng);
    let own = lbchat::valuation::coreset_loss(&learner, learner.params(), &own_coreset, &pen);
    let mut foreign_sum = 0.0f32;
    for d in &datasets[1..] {
        let c = construct(&learner, d, &CoresetConfig { size: 60 }, &mut rng);
        foreign_sum += lbchat::valuation::coreset_loss(&learner, learner.params(), &c, &pen);
    }
    let foreign_avg = foreign_sum / (datasets.len() - 1) as f32;
    assert!(
        foreign_avg > own,
        "foreign data must look harder: own {own} vs foreign avg {foreign_avg}"
    );
}
