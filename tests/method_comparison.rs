//! Cross-method integration: every benchmark runs on the same scenario and
//! the qualitative relationships the paper reports hold directionally even
//! at quick scale.

use experiments::{run_method, Condition, Method, Scale, Scenario};

#[test]
fn all_methods_learn_on_the_shared_scenario() {
    let s = Scenario::build(Scale::quick());
    for method in Method::MAIN {
        let out = run_method(method, &s, Condition::NoLoss).expect("scenario fits");
        let first = out.metrics.loss_curve.first().unwrap().1;
        let last = out.metrics.loss_curve.last().unwrap().1;
        assert!(
            last < first,
            "{} must reduce loss: {first} -> {last}",
            method.name()
        );
    }
}

#[test]
fn lbchat_delivery_rate_tops_v2v_benchmarks_under_loss() {
    // §IV-C: LbChat 87% vs DFL-DDS 52% / DP 51%. The mechanism — route-
    // aware neighbor prioritization + contact-fitted adaptive compression —
    // must show up directionally at any scale.
    let s = Scenario::build(Scale::quick());
    let lbchat = run_method(Method::LbChat, &s, Condition::WithLoss).expect("scenario fits");
    let dp = run_method(Method::Dp, &s, Condition::WithLoss).expect("scenario fits");
    let dfl = run_method(Method::DflDds, &s, Condition::WithLoss).expect("scenario fits");
    let r_lbchat = lbchat.metrics.model_receiving_rate();
    let r_dp = dp.metrics.model_receiving_rate();
    let r_dfl = dfl.metrics.model_receiving_rate();
    assert!(
        r_lbchat >= r_dp - 0.05 && r_lbchat >= r_dfl - 0.05,
        "LbChat receiving rate ({r_lbchat:.2}) must not trail DP ({r_dp:.2}) or DFL-DDS ({r_dfl:.2})"
    );
}

#[test]
fn decentralized_methods_use_the_v2v_radio_and_infra_methods_do_not() {
    let s = Scenario::build(Scale::quick());
    let lbchat = run_method(Method::LbChat, &s, Condition::NoLoss).expect("scenario fits");
    assert!(lbchat.metrics.sessions > 0);
    let proxskip = run_method(Method::ProxSkip, &s, Condition::NoLoss).expect("scenario fits");
    assert_eq!(proxskip.metrics.sessions, 0, "ProxSkip is server-only");
    assert!(proxskip.metrics.model_sends > 0, "but it does use the backend");
    let rsul = run_method(Method::RsuL, &s, Condition::NoLoss).expect("scenario fits");
    assert_eq!(rsul.metrics.sessions, 0, "RSU-L is infrastructure-only");
}

#[test]
fn collaboration_beats_local_only_training() {
    // Any collaborative method should beat pure local training on the
    // joint evaluation distribution — the premise of the whole line of
    // work. We emulate local-only by running SCO on a world where nobody
    // ever meets (trace too short for contacts is impractical; instead we
    // compare against the first loss sample after local-only warmup).
    let s = Scenario::build(Scale::quick());
    let lbchat = run_method(Method::LbChat, &s, Condition::NoLoss).expect("scenario fits");
    let curve = &lbchat.metrics.loss_curve;
    // The early curve is local-only (few contacts yet); the end reflects
    // collaboration. A strict improvement is required.
    let early = curve[1].1;
    let last = curve.last().unwrap().1;
    assert!(last < early, "collaboration must keep improving: {early} -> {last}");
}
