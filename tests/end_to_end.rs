//! End-to-end integration: the full LbChat stack — world generation, data
//! collection, trace playback, chats over the simulated radio, coreset
//! absorption, model aggregation — at quick scale.

use experiments::{run_method, Condition, Method, Scale, Scenario};

fn quick_scenario() -> Scenario {
    Scenario::build(Scale::quick())
}

#[test]
fn lbchat_trains_end_to_end() {
    let s = quick_scenario();
    let out = run_method(Method::LbChat, &s, Condition::NoLoss).expect("scenario fits");
    let curve = &out.metrics.loss_curve;
    assert!(curve.len() >= 4, "loss curve must be sampled");
    let first = curve.first().unwrap().1;
    let last = curve.last().unwrap().1;
    assert!(last < first * 0.8, "training must clearly reduce loss: {first} -> {last}");
    assert!(out.metrics.sessions > 0, "vehicles must chat");
    assert!(out.metrics.coreset_receives > 0, "coresets must flow");
    assert!(out.metrics.train_iterations > 0);
}

#[test]
fn lbchat_is_deterministic_per_seed() {
    let s1 = quick_scenario();
    let out1 = run_method(Method::LbChat, &s1, Condition::WithLoss).expect("scenario fits");
    let s2 = quick_scenario();
    let out2 = run_method(Method::LbChat, &s2, Condition::WithLoss).expect("scenario fits");
    assert_eq!(
        out1.metrics.sessions, out2.metrics.sessions,
        "identical seeds must reproduce the run"
    );
    let l1 = out1.metrics.final_loss().unwrap();
    let l2 = out2.metrics.final_loss().unwrap();
    assert!((l1 - l2).abs() < 1e-9, "final losses must match: {l1} vs {l2}");
    for (a, b) in out1.models.iter().zip(&out2.models) {
        assert_eq!(a.as_slice(), b.as_slice(), "models must match bit-for-bit");
    }
}

#[test]
fn wireless_loss_costs_deliveries_but_not_convergence_robustness() {
    let s = quick_scenario();
    let clean = run_method(Method::LbChat, &s, Condition::NoLoss).expect("scenario fits");
    let lossy = run_method(Method::LbChat, &s, Condition::WithLoss).expect("scenario fits");
    // Deliveries cannot be *better* under loss.
    assert!(
        lossy.metrics.model_receiving_rate() <= clean.metrics.model_receiving_rate() + 1e-9,
        "loss cannot improve delivery"
    );
    // LbChat's route-aware prioritization keeps it training: loss still
    // clearly decreases under wireless loss.
    let curve = &lossy.metrics.loss_curve;
    assert!(curve.last().unwrap().1 < curve.first().unwrap().1 * 0.9);
}

#[test]
fn sco_exchanges_data_but_never_models() {
    let s = quick_scenario();
    let out = run_method(Method::Sco, &s, Condition::NoLoss).expect("scenario fits");
    assert_eq!(out.metrics.model_sends, 0, "SCO must not move model bytes");
    assert!(out.metrics.coreset_receives > 0, "SCO lives on coresets");
    let curve = &out.metrics.loss_curve;
    assert!(curve.last().unwrap().1 < curve.first().unwrap().1, "SCO still learns");
}
